//! Experiment-driver smoke test (ISSUE 1 satellite): every paper-figure
//! driver behind the 13 criterion benches must produce an
//! `ExperimentResult` with non-empty, finite rows, without running
//! criterion itself.

use sprint_core::experiments::{self, Scale};
use sprint_core::ExperimentResult;

fn assert_well_formed(r: &ExperimentResult) {
    assert!(!r.id.is_empty(), "result has an id");
    assert!(!r.title.is_empty(), "{}: result has a title", r.id);
    assert!(!r.rows.is_empty(), "{}: no rows produced", r.id);
    for (i, row) in r.rows.iter().enumerate() {
        assert!(!row.is_empty(), "{}: row {i} is empty", r.id);
        for cell in row {
            let lower = cell.to_ascii_lowercase();
            assert!(
                !lower.contains("nan") && !lower.contains("inf"),
                "{}: row {i} contains a non-finite cell: {cell:?}",
                r.id
            );
        }
    }
}

#[test]
fn every_driver_produces_finite_rows() {
    let scale = Scale {
        seq_cap: 128,
        accuracy_seq: 48,
        seed: 0x5bc1,
    };
    let results = experiments::all(&scale).expect("all experiment drivers run");
    // `all` covers every table/figure the benches regenerate: the two
    // static tables, Figs. 1-3, 5, 8-14, Table III, the FFN table, the
    // extras, and each ablation.
    assert!(
        results.len() >= 16,
        "expected the full driver set, got {} results",
        results.len()
    );
    let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
    for required in [
        "tab1", "tab2", "tab3", "fig1", "fig2", "fig3", "fig5", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14",
    ] {
        assert!(
            ids.iter().any(|id| id.starts_with(required)),
            "driver {required} missing from experiments::all"
        );
    }
    for r in &results {
        assert_well_formed(r);
    }
}
