//! Experiment drivers: one per table/figure of the paper's evaluation.
//!
//! Every driver returns an [`ExperimentResult`] carrying the same rows
//! or series the paper reports, formatted for terminal display. The
//! [`Scale`] parameter lets tests and benches run at reduced sequence
//! lengths; `Scale::full()` regenerates the paper-size experiments
//! (used by `cargo run -p sprint-bench --bin report`).

use sprint_accelerator::{mean_imbalance, MappingPolicy};
use sprint_energy::Category;
use sprint_engine::{Engine, ExecutionMode as EngineMode, HeadRequest};
use sprint_workloads::{overlap, ModelConfig, TraceGenerator};

use crate::accuracy::{bit_sensitivity, evaluate_scenarios};
use crate::counting::{simulate_head, ExecutionMode};
use crate::ffn::end_to_end;
use crate::prior_art::{sprint_metrics, PriorArt};
use crate::{geomean, ExperimentResult, HeadProfile, SprintConfig, SyntheticHeadSpec, SystemError};

/// How large to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Cap on any sequence length in counting experiments.
    pub seq_cap: usize,
    /// Sequence length for functional accuracy experiments (these run
    /// the full analog + digital datapath per element).
    pub accuracy_seq: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Paper-size experiments (Synth-2 at 4096; accuracy at 256).
    pub fn full() -> Self {
        Scale {
            seq_cap: 4096,
            accuracy_seq: 256,
            seed: 0xc0ffee,
        }
    }

    /// Reduced sizes for tests and quick benches.
    pub fn quick() -> Self {
        Scale {
            seq_cap: 256,
            accuracy_seq: 96,
            seed: 0xc0ffee,
        }
    }

    /// A model's sequence/live sizes under this scale.
    fn sized(&self, model: &ModelConfig) -> (usize, usize) {
        let seq = model.seq_len.min(self.seq_cap);
        let live = ((seq as f64) * (1.0 - model.padding_fraction)).round() as usize;
        (seq, live.clamp(1, seq))
    }

    /// A counting profile for one model under this scale.
    pub fn profile(&self, model: &ModelConfig, salt: u64) -> HeadProfile {
        let (seq, live) = self.sized(model);
        HeadProfile::synthetic(
            seq,
            live,
            model.keep_rate(),
            model.adjacent_overlap,
            self.seed ^ salt,
        )
    }

    /// Counting profiles for a model list, generated across cores.
    ///
    /// Profile `i` is seeded with `salt_base + i`, so the result is
    /// element-for-element identical to calling
    /// [`Scale::profile`]`(model, salt_base + i)` sequentially.
    pub fn profiles(&self, models: &[ModelConfig], salt_base: u64) -> Vec<HeadProfile> {
        let specs: Vec<SyntheticHeadSpec> = models
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let (seq, live) = self.sized(m);
                SyntheticHeadSpec {
                    seq_len: seq,
                    live,
                    keep_rate: m.keep_rate(),
                    overlap: m.adjacent_overlap,
                    seed: self.seed ^ (salt_base + i as u64),
                }
            })
            .collect();
        HeadProfile::synthetic_many(&specs)
    }
}

/// Fig. 1: percentage of baseline energy spent on memory accesses vs
/// available on-chip capacity, across sequence lengths.
pub fn fig1(scale: &Scale) -> ExperimentResult {
    let seq_lens: Vec<usize> = [32usize, 64, 128, 256, 512, 1024, 2048, 4096]
        .into_iter()
        .filter(|&s| s <= scale.seq_cap.max(32))
        .collect();
    let capacities = [20usize, 40, 60, 80, 100];
    let mut result = ExperimentResult::new(
        "fig1",
        "Percentage of energy spent on memory accesses (baseline)",
    )
    .headers(
        std::iter::once("Capacity %".to_string()).chain(seq_lens.iter().map(|s| format!("S={s}"))),
    );
    // One profile per sequence length, generated across cores (the
    // capacity sweep reuses them — the profile depends only on `s`).
    let specs: Vec<SyntheticHeadSpec> = seq_lens
        .iter()
        .map(|&s| SyntheticHeadSpec {
            seq_len: s,
            live: s,
            keep_rate: 0.25,
            overlap: 0.85,
            seed: scale.seed ^ s as u64,
        })
        .collect();
    let profiles = HeadProfile::synthetic_many(&specs);
    for pct in capacities {
        let mut row = vec![format!("{pct}%")];
        for (&s, profile) in seq_lens.iter().zip(&profiles) {
            let requisite_kib = (s * 2 * 64).div_ceil(1024);
            let mut cfg = SprintConfig::small();
            cfg.onchip_kib = (requisite_kib * pct / 100).max(1);
            let base = simulate_head(profile, &cfg, ExecutionMode::Baseline);
            let frac = base.energy.memory_access().as_pj() / base.energy.total().as_pj();
            row.push(format!("{:.1}%", frac * 100.0));
        }
        result.push_row(row);
    }
    result.push_note("paper: >60% on average at 20% capacity; minor at 100%");
    result
}

/// Fig. 2: the query/key unpruned map of a CoLA-like head
/// ('#' kept, '.' pruned, ' ' padded), as decided by the engine's
/// full-precision oracle pipeline.
///
/// # Errors
///
/// Propagates trace-generation and engine errors.
pub fn fig2(scale: &Scale) -> Result<ExperimentResult, SystemError> {
    let seq = 48.min(scale.seq_cap);
    let live = (seq * 2) / 3;
    let spec = ModelConfig::bert_base()
        .trace_spec()
        .with_seq_len(seq)
        .with_padding(1.0 - live as f64 / seq as f64)
        .with_overlap(0.85);
    let trace = TraceGenerator::new(scale.seed).generate(&spec)?;
    let engine = Engine::builder(SprintConfig::small())
        .mode(EngineMode::Oracle)
        .worker_slots(1)
        .build()
        .map_err(SystemError::from)?;
    let response = engine
        .run_head(&HeadRequest::from_trace(&trace))
        .map_err(SystemError::from)?;
    let mut result =
        ExperimentResult::new("fig2", "Query-key unpruned map (rows: queries, cols: keys)");
    for (i, d) in response.decisions.iter().enumerate() {
        let mut line = String::with_capacity(seq);
        for j in 0..seq {
            line.push(if i >= trace.live_tokens() || j >= trace.live_tokens() {
                ' '
            } else if d.is_kept(j) {
                '#'
            } else {
                '.'
            });
        }
        result.push_row([line]);
    }
    result.push_note("blue squares of the paper's Fig. 2 are '#'; gray mask is blank");
    Ok(result)
}

/// Fig. 3: observed adjacent-query overlap vs the Eq. (1) random
/// expectation.
///
/// # Errors
///
/// Propagates trace-generation errors.
pub fn fig3(scale: &Scale) -> Result<ExperimentResult, SystemError> {
    let mut result = ExperimentResult::new(
        "fig3",
        "Adjacent-query kept-set overlap: dataset vs random (Eq. 1)",
    )
    .headers(["Model", "Random E(L)/M", "Dataset", "Gain"]);
    // Trace synthesis dominates this figure; one worker per model. The
    // overlap is measured on the engine's oracle decisions (one shared
    // engine — run_head takes &self — rather than per-trace bookkeeping).
    let engine = Engine::builder(SprintConfig::small())
        .mode(EngineMode::Oracle)
        .build()
        .map_err(SystemError::from)?;
    let models: Vec<(usize, ModelConfig)> =
        ModelConfig::real_models().into_iter().enumerate().collect();
    let rows = sprint_parallel::par_try_map(&models, |&(i, ref model)| {
        let (seq, _) = scale.sized(model);
        let spec = model.trace_spec().with_seq_len(seq);
        let trace = TraceGenerator::new(scale.seed ^ (i as u64 + 1)).generate(&spec)?;
        let live = trace.live_tokens() as u64;
        let m = ((live as f64) * model.keep_rate()).round() as u64;
        let random = overlap::expected_overlap_fraction(live, m.min(live));
        let response = engine
            .run_head(&HeadRequest::from_trace(&trace).with_head_id(i as u64))
            .map_err(SystemError::from)?;
        let observed = sprint_attention::pruning_stats(&response.decisions[..trace.live_tokens()])
            .mean_adjacent_overlap;
        Ok::<_, SystemError>([
            model.name.to_string(),
            format!("{:.1}%", random * 100.0),
            format!("{:.1}%", observed * 100.0),
            format!("{:.1}x", observed / random.max(1e-9)),
        ])
    })?;
    for row in rows {
        result.push_row(row);
    }
    result.push_note("paper: a striking 2-3x increase over the random expectation");
    Ok(result)
}

/// Fig. 5: accuracy sensitivity to the in-memory score precision b.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn fig5(scale: &Scale) -> Result<ExperimentResult, SystemError> {
    let mut mrpc = ModelConfig::bert_base();
    mrpc.name = "BERT-MRPC";
    mrpc.padding_fraction = 0.6;
    let squad = ModelConfig::bert_base();
    let vit = ModelConfig::vit_base();
    let mut result = ExperimentResult::new(
        "fig5",
        "Task accuracy vs in-memory score bits b (with recompute)",
    )
    .headers(["b", "BERT-MRPC", "BERT-SQUAD", "ViT"]);
    // The three sweeps each run the full analog + digital datapath per
    // bit width; fan them out across cores.
    let jobs = [(mrpc, 0xau64), (squad, 0xb), (vit, 0xc)];
    let sweeps = sprint_parallel::par_try_map(&jobs, |(model, salt)| {
        bit_sensitivity(model, Some(scale.accuracy_seq), 8, scale.seed ^ salt)
    })?;
    for (b, ((s0, s1), s2)) in sweeps[0].iter().zip(&sweeps[1]).zip(&sweeps[2]).enumerate() {
        result.push_row([
            format!("{}", b + 1),
            format!("{:.1}%", s0.1 * 100.0),
            format!("{:.1}%", s1.1 * 100.0),
            format!("{:.1}%", s2.1 * 100.0),
        ]);
    }
    result.push_note("paper: 4-bit precision has virtually no impact on final accuracy");
    Ok(result)
}

/// Fig. 8: CORELET imbalance, sequential vs interleaved mapping.
pub fn fig8(scale: &Scale) -> ExperimentResult {
    let models = [
        ModelConfig::bert_base(),
        ModelConfig::vit_base(),
        ModelConfig::gpt2_large(),
    ];
    let mut result = ExperimentResult::new(
        "fig8",
        "CORELET utilization imbalance (max/min kept tokens)",
    )
    .headers(["CORELETs", "Mapping", "BERT-B", "ViT-B", "GPT-2-L"]);
    let profiles = scale.profiles(&models, 0x80);
    for corelets in [2usize, 4, 8, 16] {
        for (policy, label) in [
            (MappingPolicy::Sequential, "Sequential"),
            (MappingPolicy::Interleaved, "Interleaving"),
        ] {
            let mut row = vec![format!("{corelets}"), label.to_string()];
            for profile in &profiles {
                // Sequential blocks partition the *live* extent: the
                // scheduler knows the input length, so no CORELET is
                // assigned a purely padded block.
                let ratio = mean_imbalance(
                    &profile.kept_per_query,
                    corelets,
                    policy,
                    profile.live.max(1),
                );
                row.push(format!("{ratio:.2}"));
            }
            result.push_row(row);
        }
    }
    result.push_note(
        "paper: interleaving considerably improves balance; ratios grow with CORELET count",
    );
    result
}

/// Fig. 9: task accuracy under the four scenarios.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn fig9(scale: &Scale) -> Result<ExperimentResult, SystemError> {
    let mut result = ExperimentResult::new(
        "fig9",
        "Task accuracy: baseline / runtime pruning / SPRINT w/o recompute / SPRINT",
    )
    .headers([
        "Model",
        "Baseline",
        "Runtime Pruning",
        "w/o Recompute",
        "SPRINT",
    ]);
    let mut scores = Vec::new();
    // Each scenario evaluation runs four full pipelines; this is the
    // most expensive driver, one worker per model.
    let models: Vec<(usize, ModelConfig)> =
        ModelConfig::real_models().into_iter().enumerate().collect();
    let evaluated = sprint_parallel::par_try_map(&models, |&(i, ref model)| {
        evaluate_scenarios(
            model,
            Some(scale.accuracy_seq),
            scale.seed ^ (0x90 + i as u64),
        )
        .map(|s| (model.clone(), s))
    })?;
    for (model, s) in evaluated {
        let fmt = |t: sprint_workloads::TaskScore| {
            if model.is_generative() {
                format!("ppl {:.2}", t.perplexity)
            } else {
                format!("{:.1}%", t.accuracy * 100.0)
            }
        };
        result.push_row([
            model.name.to_string(),
            fmt(s.baseline),
            fmt(s.runtime_pruning),
            fmt(s.sprint_no_recompute),
            fmt(s.sprint),
        ]);
        scores.push((model.name.to_string(), s));
    }
    let deg = crate::accuracy::mean_degradation(&scores);
    result.push_note(format!(
        "measured mean SPRINT degradation {:.2}% (paper: 0.36%)",
        deg * 100.0
    ));
    result.push_note("paper: w/o recompute loses ~4%; recompute restores parity");
    Ok(result)
}

/// Fig. 10: main-memory data-movement reduction vs the S-baseline.
pub fn fig10(scale: &Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig10",
        "Data movement reduction vs S-Baseline (Mask Only / SPRINT)",
    )
    .headers(["Model", "Config", "Mask Only", "SPRINT"]);
    let models = ModelConfig::all();
    let profiles = scale.profiles(&models, 0x100);
    for (model, profile) in models.iter().zip(&profiles) {
        let s_baseline = simulate_head(profile, &SprintConfig::small(), ExecutionMode::Baseline);
        for cfg in SprintConfig::all() {
            let mask = simulate_head(profile, &cfg, ExecutionMode::MaskOnly);
            let sprint = simulate_head(profile, &cfg, ExecutionMode::Sprint);
            result.push_row([
                model.name.to_string(),
                cfg.name.to_string(),
                format!(
                    "{:.1}%",
                    mask.data_movement_reduction_over(&s_baseline) * 100.0
                ),
                format!(
                    "{:.1}%",
                    sprint.data_movement_reduction_over(&s_baseline) * 100.0
                ),
            ]);
        }
    }
    result.push_note("paper averages: SPRINT 94.9/98.5/98.9% for S/M/L; mask-only 65.2/84.5/92.2%");
    result
}

/// Figs. 11 and 12 share structure; `metric` picks cycles or energy.
fn speedup_like(
    scale: &Scale,
    id: &str,
    title: &str,
    metric: fn(&crate::HeadPerf, &crate::HeadPerf) -> f64,
    note: &str,
) -> ExperimentResult {
    let mut result =
        ExperimentResult::new(id, title).headers(["Model", "S-SPRINT", "M-SPRINT", "L-SPRINT"]);
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let models = ModelConfig::all();
    let profiles = scale.profiles(&models, 0x200);
    for (model, profile) in models.iter().zip(&profiles) {
        let mut row = vec![model.name.to_string()];
        for (c, cfg) in SprintConfig::all().into_iter().enumerate() {
            let base = simulate_head(profile, &cfg, ExecutionMode::Baseline);
            let sprint = simulate_head(profile, &cfg, ExecutionMode::Sprint);
            let x = metric(&sprint, &base);
            per_config[c].push(x);
            row.push(format!("{x:.2}x"));
        }
        result.push_row(row);
    }
    result.push_row([
        "Geomean".to_string(),
        format!("{:.2}x", geomean(&per_config[0])),
        format!("{:.2}x", geomean(&per_config[1])),
        format!("{:.2}x", geomean(&per_config[2])),
    ]);
    result.push_note(note.to_string());
    result
}

/// Fig. 11: speedup over the iso-resource baseline.
pub fn fig11(scale: &Scale) -> ExperimentResult {
    speedup_like(
        scale,
        "fig11",
        "Speedup over baseline (self-attention layers)",
        crate::HeadPerf::speedup_over,
        "paper geomeans: 7.49x / 7.36x / 7.13x for S/M/L; BERT-L max, ViT-B min (2.7-2.8x)",
    )
}

/// Fig. 12: energy reduction over the iso-resource baseline.
pub fn fig12(scale: &Scale) -> ExperimentResult {
    speedup_like(
        scale,
        "fig12",
        "Energy reduction over baseline (self-attention layers)",
        crate::HeadPerf::energy_reduction_over,
        "paper geomeans: 19.56x / 16.82x / 12.03x for S/M/L; Synth models favour L",
    )
}

/// Fig. 13: M-SPRINT energy breakdown, normalized to the baseline.
pub fn fig13(scale: &Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig13",
        "M-SPRINT energy breakdown normalized to baseline (percent)",
    )
    .headers(
        ["Model", "Variant"]
            .into_iter()
            .map(String::from)
            .chain(Category::ALL.iter().map(|c| c.label().to_string()))
            .chain(std::iter::once("Total".to_string())),
    );
    let cfg = SprintConfig::medium();
    let models = ModelConfig::all();
    let profiles = scale.profiles(&models, 0x300);
    for (model, profile) in models.iter().zip(&profiles) {
        let base = simulate_head(profile, &cfg, ExecutionMode::Baseline);
        let reference = base.energy.total();
        for (mode, label) in [
            (ExecutionMode::Baseline, "Baseline"),
            (ExecutionMode::PruningOnly, "Pruning"),
            (ExecutionMode::Sprint, "SPRINT"),
        ] {
            let perf = simulate_head(profile, &cfg, mode);
            let mut row = vec![model.name.to_string(), label.to_string()];
            for (_, frac) in perf.energy.normalized_to(reference) {
                row.push(format!("{:.2}%", frac * 100.0));
            }
            row.push(format!(
                "{:.2}%",
                perf.energy.total().as_pj() / reference.as_pj() * 100.0
            ));
            result.push_row(row);
        }
    }
    result.push_note("paper: pruning-only lands near 52% (1.9-2.0x); SPRINT near 3-6%; ReRAM writes dominate the SPRINT stack");
    result
}

/// Fig. 14: the S-SPRINT floorplan area model.
pub fn fig14() -> ExperimentResult {
    let mut result = ExperimentResult::new("fig14", "S-SPRINT area (65 nm)").headers([
        "Component",
        "Area (mm^2)",
        "Share",
    ]);
    let area = SprintConfig::small().area();
    let total = area.total_mm2();
    for c in area.components() {
        result.push_row([
            c.name.clone(),
            format!("{:.3}", c.area_mm2),
            format!("{:.1}%", c.area_mm2 / total * 100.0),
        ]);
    }
    result.push_row([
        "Total".to_string(),
        format!("{total:.3}"),
        "100.0%".to_string(),
    ]);
    result.push_note("paper: 1.18 x 0.8 mm^2 with ~6% ReRAM in-memory overhead");
    result
}

/// Table I: the three hardware configurations.
pub fn tab1() -> ExperimentResult {
    let mut result = ExperimentResult::new("tab1", "Hardware configurations of SPRINT");
    for cfg in SprintConfig::all() {
        for line in cfg.to_string().lines() {
            result.push_row([line.to_string()]);
        }
    }
    result
}

/// Table II: unit energies.
pub fn tab2() -> ExperimentResult {
    let u = sprint_energy::UnitEnergies::default();
    let mut result = ExperimentResult::new("tab2", "Energy of major microarchitectural units")
        .headers(["Unit", "Energy"]);
    result.push_row([
        "QK-PU/V-PU dot product (8b, 64-tap)",
        &format!("{}", u.qk_pu_dot_product),
    ]);
    result.push_row([
        "Key/Value buffer (4 banks x 128b)",
        &format!("{}", u.kv_buffer_access),
    ]);
    result.push_row(["Softmax (2 LUT + mul + div)", &format!("{}", u.softmax)]);
    result.push_row([
        "Analog comparators (128 cols)",
        &format!("{}", u.analog_comparator_bank),
    ]);
    result.push_row([
        "In-memory computation (64x128)",
        &format!("{}", u.in_memory_computation),
    ]);
    result.push_row(["ReRAM write (512 b)", &format!("{}", u.reram_write_512b)]);
    result.push_row(["ReRAM read (512 b)", &format!("{}", u.reram_read_512b)]);
    result
}

/// Table III: comparison with A3, SpAtten and LeOPArd.
pub fn tab3(scale: &Scale) -> ExperimentResult {
    let profiles = scale.profiles(&ModelConfig::all(), 0x400);
    let m_sprint = sprint_metrics(&SprintConfig::medium(), &profiles);
    let mut rows = PriorArt::all();
    rows.push(m_sprint);
    let mut result = ExperimentResult::new("tab3", "Comparison with prior work")
        .headers(["Metric", "A3", "SpAtten", "LeOPArd", "M-SPRINT"]);
    let cols = |f: &dyn Fn(&crate::AcceleratorMetrics) -> String| -> Vec<String> {
        rows.iter().map(f).collect()
    };
    let push = |result: &mut ExperimentResult, name: &str, vals: Vec<String>| {
        let mut row = vec![name.to_string()];
        row.extend(vals);
        result.push_row(row);
    };
    push(
        &mut result,
        "Sequence length",
        cols(&|r| format!("{}-{}", r.seq_range.0, r.seq_range.1)),
    );
    push(
        &mut result,
        "Process (nm)",
        cols(&|r| format!("{:.0}", r.process_nm)),
    );
    push(
        &mut result,
        "Area (mm^2)",
        cols(&|r| format!("{:.1}", r.area_mm2)),
    );
    push(
        &mut result,
        "Key buffer (KB)",
        cols(&|r| format!("{:.0}", r.key_buffer_kb)),
    );
    push(
        &mut result,
        "Value buffer (KB)",
        cols(&|r| format!("{:.0}", r.value_buffer_kb)),
    );
    push(&mut result, "GOPs/s", cols(&|r| format!("{:.1}", r.gops)));
    push(
        &mut result,
        "GOPs/J",
        cols(&|r| format!("{:.1}", r.gops_per_joule)),
    );
    push(
        &mut result,
        "GOPs/s/mm^2",
        cols(&|r| format!("{:.1}", r.gops_per_mm2())),
    );
    push(
        &mut result,
        "GOPs/s/J/mm^2",
        cols(&|r| format!("{:.1}", r.gops_per_joule_per_mm2())),
    );
    push(
        &mut result,
        "Mem. cost included",
        cols(&|r| if r.memory_cost_included { "yes" } else { "no" }.to_string()),
    );
    result.push_note("paper M-SPRINT row: 1816.2 GOPs/s, 902.7 GOPs/J, 973.5 GOPs/s/mm^2");
    result
}

/// §VII end-to-end comparison including FFNs.
pub fn ffn_table(scale: &Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new("ffn", "End-to-end (attention + FFN) on M-SPRINT")
        .headers([
            "Model",
            "Energy reduction",
            "Speedup",
            "Attention ops share",
        ]);
    let cfg = SprintConfig::medium();
    let models = ModelConfig::all();
    let profiles = scale.profiles(&models, 0x500);
    for (model, profile) in models.iter().zip(&profiles) {
        let e = end_to_end(model, &cfg, profile);
        result.push_row([
            model.name.to_string(),
            format!("{:.1}x", e.energy_reduction),
            format!("{:.1}x", e.speedup),
            format!("{:.1}%", e.attention_ops_fraction * 100.0),
        ]);
    }
    result
        .push_note("paper: BERT-B 2.2x/1.8x, BERT-L 2.4x/2.0x, ViT-B 1.1x/1.0x, Synth-2 7.7x/4.7x");
    result
}

/// §II-B ablations: window>2 locality and pruning-only speedup.
pub fn extras(scale: &Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new("extras", "Motivation ablations");
    // Pruning-only speedup (paper: 1.8/1.7/1.7x geomean).
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let models = ModelConfig::all();
    for profile in &scale.profiles(&models, 0x600) {
        for (c, cfg) in SprintConfig::all().into_iter().enumerate() {
            let base = simulate_head(profile, &cfg, ExecutionMode::Baseline);
            let pruned = simulate_head(profile, &cfg, ExecutionMode::PruningOnly);
            per_config[c].push(pruned.speedup_over(&base));
        }
    }
    result.push_row([format!(
        "pruning-only speedup geomean S/M/L: {:.2}x / {:.2}x / {:.2}x (paper: 1.8/1.7/1.7x)",
        geomean(&per_config[0]),
        geomean(&per_config[1]),
        geomean(&per_config[2]),
    )]);

    // Window > 2 locality: extra overlap from two queries back that
    // the previous query does not already cover (paper: <5% on average).
    let profile = scale.profile(&ModelConfig::bert_base(), 0x700);
    let live: Vec<&Vec<usize>> = profile
        .kept_per_query
        .iter()
        .filter(|k| !k.is_empty())
        .collect();
    let mut extra = 0.0;
    let mut n = 0usize;
    for w in live.windows(3) {
        let two_back: std::collections::HashSet<usize> = w[0].iter().copied().collect();
        let one_back: std::collections::HashSet<usize> = w[1].iter().copied().collect();
        let gain = w[2]
            .iter()
            .filter(|j| two_back.contains(j) && !one_back.contains(j))
            .count();
        extra += gain as f64 / w[2].len() as f64;
        n += 1;
    }
    if n > 0 {
        result.push_row([format!(
            "window-3 extra overlap: {:.1}% (paper: below 5%, not worth the hardware)",
            extra / n as f64 * 100.0
        )]);
    }
    result
}

/// Robustness sweep: task accuracy of the four Fig. 9 scenarios as the
/// ReRAM cell fault rate grows, under the monitoring (detect-only)
/// fault policy.
///
/// The digital scenarios never touch the analog substrate, so their
/// columns are exactly flat across rates — any drift there is a bug.
/// SPRINT's on-chip recompute bounds the damage to wrongly pruned
/// keys, while the no-recompute variant exposes the corrupted analog
/// scores directly. The fault sets nest across rates (a cell faulty at
/// 1% is also faulty at 5%), so degradation is monotone by
/// construction.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn fault_sweep(scale: &Scale) -> Result<ExperimentResult, SystemError> {
    let mut result = ExperimentResult::new(
        "fault_sweep",
        "Task accuracy vs ReRAM cell fault rate (BERT-base, Monitor policy)",
    )
    .headers([
        "Fault rate",
        "Baseline",
        "Runtime Pruning",
        "w/o Recompute",
        "SPRINT",
        "Faulty cells",
    ]);
    let model = ModelConfig::bert_base();
    let rates = [0.0f64, 0.01, 0.05, 0.2];
    // Each rate runs four full analog + digital pipelines; fan the
    // rates out across cores.
    let sweeps = sprint_parallel::par_try_map(&rates, |&rate| {
        crate::accuracy::fault_scenarios(&model, Some(scale.accuracy_seq), scale.seed ^ 0xfa, rate)
    })?;
    for (rate, (s, faults)) in rates.iter().zip(sweeps) {
        result.push_row([
            format!("{rate:.2}"),
            format!("{:.4}", s.baseline.accuracy),
            format!("{:.4}", s.runtime_pruning.accuracy),
            format!("{:.4}", s.sprint_no_recompute.accuracy),
            format!("{:.4}", s.sprint.accuracy),
            format!("{faults}"),
        ]);
    }
    result.push_note(
        "digital columns are fault-immune (flat); SPRINT degrades monotonically as nested fault sets grow",
    );
    Ok(result)
}

/// One experiment driver, boxed for the parallel fan-out of [`all`].
type Driver = Box<dyn Fn(&Scale) -> Result<Vec<ExperimentResult>, SystemError> + Send + Sync>;

/// Outer worker cap for the driver fan-out of [`all`]. Most drivers
/// parallelize their own model loops at the full worker count, so the
/// outer level stays narrow to bound the nested thread product at
/// `OUTER_DRIVERS × max_threads` (rather than `max_threads²`) while
/// still overlapping the drivers whose inner loops are sequential.
const OUTER_DRIVERS: usize = 4;

/// Runs every experiment at the given scale, ablations included,
/// fanned out across cores.
///
/// Drivers are independent: up to `OUTER_DRIVERS` run concurrently,
/// each free to fan its inner model loops out across all workers. The
/// result order is fixed regardless of scheduling, and the error
/// reported on failure is that of the first failing driver in listed
/// order.
///
/// # Errors
///
/// Propagates the first driver error.
pub fn all(scale: &Scale) -> Result<Vec<ExperimentResult>, SystemError> {
    let drivers: Vec<Driver> = vec![
        Box::new(|_| Ok(vec![tab1()])),
        Box::new(|_| Ok(vec![tab2()])),
        Box::new(|s| Ok(vec![fig1(s)])),
        Box::new(|s| Ok(vec![fig2(s)?])),
        Box::new(|s| Ok(vec![fig3(s)?])),
        Box::new(|s| Ok(vec![fig5(s)?])),
        Box::new(|s| Ok(vec![fig8(s)])),
        Box::new(|s| Ok(vec![fig9(s)?])),
        Box::new(|s| Ok(vec![fig10(s)])),
        Box::new(|s| Ok(vec![fig11(s)])),
        Box::new(|s| Ok(vec![fig12(s)])),
        Box::new(|s| Ok(vec![fig13(s)])),
        Box::new(|_| Ok(vec![fig14()])),
        Box::new(|s| Ok(vec![tab3(s)])),
        Box::new(|s| Ok(vec![ffn_table(s)])),
        Box::new(|s| Ok(vec![extras(s)])),
        Box::new(|s| Ok(vec![fault_sweep(s)?])),
        Box::new(crate::ablations::all),
    ];
    let outer = sprint_parallel::max_threads().min(OUTER_DRIVERS);
    let batches = sprint_parallel::par_try_map_threads(outer, &drivers, |driver| driver(scale))?;
    Ok(batches.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> Scale {
        Scale {
            seq_cap: 128,
            accuracy_seq: 64,
            seed: 99,
        }
    }

    #[test]
    fn fig1_memory_fraction_decreases_with_capacity() {
        let r = fig1(&scale());
        assert_eq!(r.rows.len(), 5);
        // First column of first data column: 20% capacity beats 100%.
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let tight = parse(&r.rows[0][1]);
        let ample = parse(&r.rows[4][1]);
        assert!(tight > ample, "tight {tight}% vs ample {ample}%");
    }

    #[test]
    fn fig2_map_has_live_and_masked_regions() {
        let r = fig2(&scale()).unwrap();
        // The oracle pipeline (unlike the generator's reference
        // decisions) has no per-row argmax force-keep, so assert over
        // the whole map: kept and pruned cells both present, padded
        // tail blank.
        let map: Vec<&str> = r.rows.iter().map(|row| row[0].as_str()).collect();
        assert!(map.iter().any(|l| l.contains('#')), "kept cells present");
        assert!(map.iter().any(|l| l.contains('.')), "pruned cells present");
        let last = r.rows.last().unwrap()[0].clone();
        assert!(last.trim().is_empty(), "padded query row is blank");
    }

    #[test]
    fn fig3_shows_locality_gain() {
        let r = fig3(&scale()).unwrap();
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            let gain: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(gain > 1.4, "row {:?}: gain {gain}", row[0]);
        }
    }

    #[test]
    fn fig8_interleaving_rows_beat_sequential() {
        let r = fig8(&scale());
        // Rows alternate Sequential/Interleaving per CORELET count.
        for pair in r.rows.chunks(2) {
            for (seq_cell, int_cell) in pair[0][2..5].iter().zip(&pair[1][2..5]) {
                let seq: f64 = seq_cell.parse().unwrap();
                let int: f64 = int_cell.parse().unwrap();
                assert!(int <= seq + 1e-9, "interleaving {int} vs sequential {seq}");
            }
        }
    }

    #[test]
    fn fig10_reductions_increase_with_config_size() {
        let r = fig10(&scale());
        // For each model, SPRINT reduction is at least mask-only.
        for row in &r.rows {
            let mask: f64 = row[2].trim_end_matches('%').parse().unwrap();
            let sprint: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(sprint >= mask - 1e-9, "{row:?}");
        }
    }

    #[test]
    fn fig11_and_fig12_have_geomean_rows() {
        let r11 = fig11(&scale());
        let last = r11.rows.last().unwrap();
        assert_eq!(last[0], "Geomean");
        let g: f64 = last[1].trim_end_matches('x').parse().unwrap();
        assert!(g > 1.0, "SPRINT must win on average, geomean {g}");
        let r12 = fig12(&scale());
        let g12: f64 = r12.rows.last().unwrap()[1]
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(g12 > 1.0, "energy geomean {g12}");
        // The capacity-pressure shape (energy reduction well above
        // speedup, 19.6x vs 7.5x in the paper) emerges at paper-size
        // sequences; the integration suite checks it at larger scale.
    }

    #[test]
    fn fig13_totals_shrink_baseline_to_sprint() {
        let r = fig13(&scale());
        for triplet in r.rows.chunks(3) {
            let total = |row: &Vec<String>| -> f64 {
                row.last().unwrap().trim_end_matches('%').parse().unwrap()
            };
            assert!((total(&triplet[0]) - 100.0).abs() < 1e-6);
            assert!(total(&triplet[1]) < 100.0);
            assert!(total(&triplet[2]) < total(&triplet[1]));
        }
    }

    #[test]
    fn tables_render() {
        assert!(tab1().to_string().contains("S-SPRINT"));
        assert!(tab2().to_string().contains("192.560 pJ"));
        let t3 = tab3(&scale());
        assert!(t3.to_string().contains("M-SPRINT"));
        assert!(fig14().to_string().contains("Total"));
    }

    #[test]
    fn extras_report_both_ablations() {
        let r = extras(&scale());
        assert_eq!(r.rows.len(), 2);
        assert!(r.rows[0][0].contains("pruning-only"));
        assert!(r.rows[1][0].contains("window-3"));
    }
}
