//! Experiment result formatting shared by the benches and the report
//! binary.

use serde::{Deserialize, Serialize};

/// Geometric mean of a slice of positive values (the aggregation the
/// paper uses for Figs. 11 and 12).
///
/// Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive.
///
/// # Example
///
/// ```
/// use sprint_core::geomean;
///
/// assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    for &v in values {
        assert!(v > 0.0, "geomean requires positive values, got {v}");
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// One regenerated table or figure: an id (`fig11`, `tab3`, ...), a
/// title, column headers and formatted rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Stable identifier ("fig11").
    pub id: String,
    /// Human title ("Fig. 11: Speedup over baseline").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper reference values, caveats).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result with id and title.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the headers.
    pub fn headers<I: IntoIterator<Item = S>, S: Into<String>>(mut self, headers: I) -> Self {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    pub fn push_row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, row: I) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Appends a note line.
    pub fn push_note<S: Into<String>>(&mut self, note: S) {
        self.notes.push(note.into());
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string_array(items: &[String], indent: &str) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let inner: Vec<String> = items
        .iter()
        .map(|s| format!("{indent}  \"{}\"", json_escape(s)))
        .collect();
    format!("[\n{}\n{indent}]", inner.join(",\n"))
}

impl ExperimentResult {
    /// Renders this result as a pretty-printed JSON object.
    ///
    /// Hand-rolled because the offline build vendors a no-op `serde`
    /// stand-in (see `vendor/serde`); the schema matches what
    /// `serde_json` would derive for the struct: `id`, `title`,
    /// `headers`, `rows`, `notes`.
    ///
    /// # Example
    ///
    /// ```
    /// use sprint_core::ExperimentResult;
    ///
    /// let mut r = ExperimentResult::new("fig11", "Speedup").headers(["Model", "S"]);
    /// r.push_row(["BERT-B", "9.0x"]);
    /// let json = r.to_json();
    /// assert!(json.contains("\"id\": \"fig11\""));
    /// assert!(json.contains("\"BERT-B\""));
    /// ```
    pub fn to_json(&self) -> String {
        self.to_json_indented("")
    }

    fn to_json_indented(&self, indent: &str) -> String {
        let rows = if self.rows.is_empty() {
            "[]".to_string()
        } else {
            let inner: Vec<String> = self
                .rows
                .iter()
                .map(|row| {
                    format!(
                        "{indent}    {}",
                        json_string_array(row, &format!("{indent}    "))
                    )
                })
                .collect();
            format!("[\n{}\n{indent}  ]", inner.join(",\n"))
        };
        format!(
            "{{\n{i}  \"id\": \"{}\",\n{i}  \"title\": \"{}\",\n{i}  \"headers\": {},\n{i}  \"rows\": {},\n{i}  \"notes\": {}\n{i}}}",
            json_escape(&self.id),
            json_escape(&self.title),
            json_string_array(&self.headers, &format!("{indent}  ")),
            rows,
            json_string_array(&self.notes, &format!("{indent}  ")),
            i = indent,
        )
    }
}

/// Renders a slice of results as a pretty-printed JSON array (the
/// `--json` output of the report binary).
pub fn results_to_json(results: &[ExperimentResult]) -> String {
    if results.is_empty() {
        return "[]".to_string();
    }
    let inner: Vec<String> = results
        .iter()
        .map(|r| format!("  {}", r.to_json_indented("  ")))
        .collect();
    format!("[\n{}\n]", inner.join(",\n"))
}

impl std::fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        // Column widths over headers + rows.
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if !self.headers.is_empty() {
            let line: Vec<String> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
            writeln!(
                f,
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
            )?;
        }
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic_properties() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[7.5]) - 7.5).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn result_builds_and_renders() {
        let mut r = ExperimentResult::new("fig11", "Speedup").headers(["Model", "S", "M", "L"]);
        r.push_row(["BERT-B", "9.0x", "8.9x", "8.6x"]);
        r.push_note("paper geomean: 7.5/7.4/7.1");
        let text = r.to_string();
        assert!(text.contains("fig11"));
        assert!(text.contains("BERT-B"));
        assert!(text.contains("note: paper geomean"));
    }

    #[test]
    fn display_aligns_columns() {
        let mut r = ExperimentResult::new("x", "t").headers(["A", "BBBB"]);
        r.push_row(["1", "2"]);
        let text = r.to_string();
        let lines: Vec<&str> = text.lines().collect();
        // Header and row lines end aligned.
        assert_eq!(lines[1].len(), lines[3].len());
    }
}
