//! Head profiles: the per-query kept-key sets the performance
//! simulator consumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sprint_workloads::HeadTrace;

/// The pruning-mask view of one attention head: which keys each query
/// keeps, plus the padding split.
///
/// Profiles come from two sources: [`HeadProfile::from_trace`] (the
/// full synthetic Q/K/V pipeline) and [`HeadProfile::synthetic`] (a
/// fast clustered-mask generator for parameter sweeps where matrices
/// are not needed).
///
/// # Example
///
/// ```
/// use sprint_core::HeadProfile;
///
/// let p = HeadProfile::synthetic(256, 192, 0.25, 0.85, 3);
/// assert_eq!(p.seq_len, 256);
/// assert_eq!(p.live, 192);
/// assert!((p.mean_kept() - 48.0).abs() < 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadProfile {
    /// Total sequence length including padding.
    pub seq_len: usize,
    /// Live (non-padded) tokens.
    pub live: usize,
    /// Embedding size.
    pub head_dim: usize,
    /// Kept key indices per query; padded queries hold empty sets.
    pub kept_per_query: Vec<Vec<usize>>,
}

/// Parameters of one [`HeadProfile::synthetic`] call, for batched
/// parallel generation via [`HeadProfile::synthetic_many`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticHeadSpec {
    /// Total sequence length including padding.
    pub seq_len: usize,
    /// Live (non-padded) tokens.
    pub live: usize,
    /// Fraction of live keys kept per live query.
    pub keep_rate: f64,
    /// Adjacent-query kept-set overlap target.
    pub overlap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl HeadProfile {
    /// Extracts the profile of a generated head trace.
    pub fn from_trace(trace: &HeadTrace) -> Self {
        HeadProfile {
            seq_len: trace.seq_len(),
            live: trace.live_tokens(),
            head_dim: trace.config().d(),
            kept_per_query: trace
                .reference_decisions()
                .iter()
                .map(|d| d.kept_indices())
                .collect(),
        }
    }

    /// Generates a clustered-mask profile directly: `keep_rate` of the
    /// live keys kept per live query, with `overlap` of each query's
    /// kept set carried over from the previous query, arranged in
    /// contiguous clusters (the spatial structure of Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics unless `live <= seq_len`, `0 < keep_rate <= 1` and
    /// `0 <= overlap <= 1`.
    pub fn synthetic(seq_len: usize, live: usize, keep_rate: f64, overlap: f64, seed: u64) -> Self {
        assert!(live >= 1 && live <= seq_len, "live tokens within sequence");
        assert!(keep_rate > 0.0 && keep_rate <= 1.0, "keep rate in (0, 1]");
        assert!((0.0..=1.0).contains(&overlap), "overlap in [0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let m = ((live as f64 * keep_rate).round() as usize).clamp(1, live);

        // Initial kept set: a handful of contiguous clusters.
        let clusters = (m / 16).max(1);
        let width = m.div_ceil(clusters);
        let mut kept = vec![false; live];
        let mut count = 0usize;
        while count < m {
            let start = rng.gen_range(0..live);
            for off in 0..width {
                let j = (start + off) % live;
                if !kept[j] {
                    kept[j] = true;
                    count += 1;
                    if count == m {
                        break;
                    }
                }
            }
        }

        let retain = ((overlap * m as f64).round() as usize).min(m);
        // Maintain the kept set as a swap-remove list for O(1) drops
        // and anchor picks (full-size sweeps evolve 4096-query masks).
        let mut kept_list: Vec<usize> = kept
            .iter()
            .enumerate()
            .filter_map(|(j, &k)| k.then_some(j))
            .collect();
        let mut kept_per_query = Vec::with_capacity(seq_len);
        for _ in 0..live {
            let mut snapshot = kept_list.clone();
            snapshot.sort_unstable();
            kept_per_query.push(snapshot);
            // Evolve: drop m - retain random kept keys, then grow the
            // clusters by the same amount (keeps spatial contiguity).
            let drop = m - retain;
            for _ in 0..drop {
                if kept_list.is_empty() {
                    break;
                }
                let idx = rng.gen_range(0..kept_list.len());
                let victim = kept_list.swap_remove(idx);
                kept[victim] = false;
            }
            let mut added = 0usize;
            let mut guard = 0usize;
            while added < drop && guard < live * 4 {
                guard += 1;
                // Extend an existing cluster edge with high probability,
                // otherwise seed a new position.
                let j = if rng.gen_bool(0.85) && !kept_list.is_empty() {
                    let anchor = kept_list[rng.gen_range(0..kept_list.len())];
                    if rng.gen_bool(0.5) {
                        (anchor + 1) % live
                    } else {
                        (anchor + live - 1) % live
                    }
                } else {
                    rng.gen_range(0..live)
                };
                if !kept[j] {
                    kept[j] = true;
                    kept_list.push(j);
                    added += 1;
                }
            }
        }
        for _ in live..seq_len {
            kept_per_query.push(Vec::new());
        }
        HeadProfile {
            seq_len,
            live,
            head_dim: 64,
            kept_per_query,
        }
    }

    /// Generates many synthetic profiles in parallel, one per spec, in
    /// spec order. Each head's mask evolution is inherently sequential
    /// in its queries, but heads are independent — the per-head loop
    /// fans out across cores with deterministic output (each profile is
    /// a pure function of its spec).
    ///
    /// # Panics
    ///
    /// Panics if any spec violates the [`HeadProfile::synthetic`]
    /// preconditions.
    pub fn synthetic_many(specs: &[SyntheticHeadSpec]) -> Vec<HeadProfile> {
        sprint_parallel::par_map(specs, |s| {
            HeadProfile::synthetic(s.seq_len, s.live, s.keep_rate, s.overlap, s.seed)
        })
    }

    /// Mean kept keys per live query.
    pub fn mean_kept(&self) -> f64 {
        let live_queries: Vec<&Vec<usize>> = self
            .kept_per_query
            .iter()
            .filter(|k| !k.is_empty())
            .collect();
        if live_queries.is_empty() {
            return 0.0;
        }
        live_queries.iter().map(|k| k.len()).sum::<usize>() as f64 / live_queries.len() as f64
    }

    /// Mean keep rate among live keys.
    pub fn keep_rate(&self) -> f64 {
        if self.live == 0 {
            0.0
        } else {
            self.mean_kept() / self.live as f64
        }
    }

    /// Mean adjacent-query kept-set overlap (fraction of the current
    /// query's kept keys shared with the previous live query).
    pub fn mean_overlap(&self) -> f64 {
        let live: Vec<&Vec<usize>> = self
            .kept_per_query
            .iter()
            .filter(|k| !k.is_empty())
            .collect();
        if live.len() < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for w in live.windows(2) {
            let prev: std::collections::HashSet<usize> = w[0].iter().copied().collect();
            let shared = w[1].iter().filter(|j| prev.contains(j)).count();
            sum += shared as f64 / w[1].len() as f64;
        }
        sum / (live.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::{TraceGenerator, TraceSpec};

    #[test]
    fn synthetic_hits_keep_rate_and_overlap() {
        let p = HeadProfile::synthetic(256, 200, 0.25, 0.85, 11);
        assert!(
            (p.keep_rate() - 0.25).abs() < 0.03,
            "keep {}",
            p.keep_rate()
        );
        assert!(
            (p.mean_overlap() - 0.85).abs() < 0.06,
            "overlap {}",
            p.mean_overlap()
        );
        assert_eq!(p.kept_per_query.len(), 256);
        assert!(p.kept_per_query[200..].iter().all(Vec::is_empty));
    }

    #[test]
    fn synthetic_masks_are_clustered() {
        // Count contiguous runs: clustered masks have far fewer runs
        // than random masks with the same density.
        let p = HeadProfile::synthetic(256, 256, 0.25, 0.85, 3);
        let kept = &p.kept_per_query[10];
        let mut runs = 1;
        for w in kept.windows(2) {
            if w[1] != w[0] + 1 {
                runs += 1;
            }
        }
        // 64 kept keys: random placement would give ~48 runs
        // (64 * (1 - 64/256)); clusters should stay well below that.
        assert!(runs < 36, "kept set too fragmented: {runs} runs");
    }

    #[test]
    fn synthetic_extremes() {
        let all = HeadProfile::synthetic(64, 64, 1.0, 1.0, 5);
        assert_eq!(all.kept_per_query[0].len(), 64);
        assert!((all.mean_overlap() - 1.0).abs() < 1e-9);
        let one = HeadProfile::synthetic(64, 32, 0.03, 0.0, 5);
        assert_eq!(one.kept_per_query[0].len(), 1);
    }

    #[test]
    fn from_trace_matches_trace_statistics() {
        let spec = TraceSpec::default().with_seq_len(96);
        let trace = TraceGenerator::new(9).generate(&spec).unwrap();
        let p = HeadProfile::from_trace(&trace);
        assert_eq!(p.seq_len, 96);
        assert_eq!(p.live, trace.live_tokens());
        assert_eq!(p.head_dim, 64);
        let expected_keep = 1.0 - spec.prune_rate;
        assert!(
            (p.keep_rate() - expected_keep).abs() < 0.05,
            "profile keep {} vs spec {}",
            p.keep_rate(),
            expected_keep
        );
        // The two estimators differ slightly on queries with empty
        // kept sets (the profile filters them, the trace counts them
        // as zero-overlap terms).
        assert!(
            (p.mean_overlap() - trace.stats().mean_adjacent_overlap).abs() < 0.05,
            "profile overlap {} vs trace {}",
            p.mean_overlap(),
            trace.stats().mean_adjacent_overlap
        );
    }

    #[test]
    #[should_panic(expected = "keep rate")]
    fn synthetic_rejects_zero_keep_rate() {
        let _ = HeadProfile::synthetic(64, 64, 0.0, 0.5, 1);
    }

    #[test]
    fn synthetic_many_matches_sequential_generation() {
        let specs: Vec<SyntheticHeadSpec> = (0..6)
            .map(|i| SyntheticHeadSpec {
                seq_len: 96,
                live: 80,
                keep_rate: 0.25,
                overlap: 0.8,
                seed: 40 + i,
            })
            .collect();
        let batched = HeadProfile::synthetic_many(&specs);
        for (spec, profile) in specs.iter().zip(&batched) {
            let sequential = HeadProfile::synthetic(
                spec.seq_len,
                spec.live,
                spec.keep_rate,
                spec.overlap,
                spec.seed,
            );
            assert_eq!(profile, &sequential, "seed {}", spec.seed);
        }
    }
}
