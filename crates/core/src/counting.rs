//! The operation-counting performance and energy simulator (§VII
//! "SPRINT performance simulator").
//!
//! Faithful to the paper's methodology: count in-memory dot products
//! and analog comparisons, ReRAM read/write accesses, on-chip buffer
//! traffic, QK/V-PU dot products, softmax LUT/divider operations —
//! accounting for spatial locality and the finite on-chip K/V capacity
//! — then multiply by the Table II unit energies. Latency folds the
//! in-memory thresholding delay, the memory-channel bandwidth and the
//! worst-CORELET compute time per query.
//!
//! Four execution modes cover the paper's comparison points:
//!
//! | Mode | Fetches | Computes | Figures |
//! |---|---|---|---|
//! | [`ExecutionMode::Baseline`] | everything (padded incl.) | full `s×s` | denominator everywhere |
//! | [`ExecutionMode::MaskOnly`] | live tokens only | `live×live` | Fig. 10 "Mask Only" |
//! | [`ExecutionMode::PruningOnly`] | all K, kept V | all QK, kept softmax/V | Fig. 13 second bar |
//! | [`ExecutionMode::Sprint`] | kept K/V via SLD | kept everything | Figs. 10–13 |

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use sprint_energy::{Category, EnergyBreakdown};

use crate::{HeadProfile, SprintConfig};

/// Which system variant to count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Iso-resource design without in-memory pruning, SLD or the
    /// two-dimensional padded-region reduction.
    Baseline,
    /// Baseline plus the padded-region (2-D) sequence reduction.
    MaskOnly,
    /// On-chip runtime pruning (LeOPArd-style): every `Q×Kᵀ` is still
    /// computed and every K fetched; softmax/`×V` run on kept scores
    /// and only kept V vectors are fetched.
    PruningOnly,
    /// Full SPRINT: in-memory thresholding, SLD reuse, selective
    /// fetch, on-chip recompute, 2-D reduction.
    Sprint,
}

impl ExecutionMode {
    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::Baseline => "Baseline",
            ExecutionMode::MaskOnly => "Mask Only",
            ExecutionMode::PruningOnly => "Pruning Only",
            ExecutionMode::Sprint => "SPRINT",
        }
    }
}

/// Counted performance of one head under one mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadPerf {
    /// The mode counted.
    pub mode: ExecutionMode,
    /// Head latency in cycles (1 GHz clock).
    pub cycles: u64,
    /// Energy by category (Table II units).
    pub energy: EnergyBreakdown,
    /// Bytes moved from main memory (K/V/Q payload).
    pub bytes_from_memory: u64,
    /// K/V vector pairs fetched.
    pub fetched_pairs: u64,
    /// K/V vector pairs reused from on-chip buffers.
    pub reused_pairs: u64,
    /// QK-PU dot products.
    pub qk_dots: u64,
    /// V-PU dot products.
    pub vpu_dots: u64,
    /// Softmax element operations.
    pub softmax_ops: u64,
}

impl HeadPerf {
    /// Speedup of `self` relative to `other` (`other.cycles / self.cycles`).
    pub fn speedup_over(&self, other: &HeadPerf) -> f64 {
        other.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Energy reduction of `self` relative to `other`.
    pub fn energy_reduction_over(&self, other: &HeadPerf) -> f64 {
        other.energy.total().as_pj() / self.energy.total().as_pj().max(1e-12)
    }

    /// Data-movement reduction relative to `other` (Fig. 10 metric).
    pub fn data_movement_reduction_over(&self, other: &HeadPerf) -> f64 {
        1.0 - self.bytes_from_memory as f64 / other.bytes_from_memory.max(1) as f64
    }
}

/// On-chip K/V residency under SLD-informed replacement: the per-
/// CORELET look-up tables and unpruned-index buffers know exactly
/// which keys the current query needs, so the controller preferably
/// retains keys that are still in the kept set and evicts the rest —
/// unlike plain LRU, which thrashes when the kept working set cycles.
#[derive(Debug)]
struct SldResidency {
    /// Retention-ordered resident keys (pinned kept set first, then
    /// older residents).
    order: Vec<usize>,
    members: HashSet<usize>,
    capacity: usize,
    hits: u64,
}

impl SldResidency {
    fn new(capacity: usize) -> Self {
        SldResidency {
            order: Vec::new(),
            members: HashSet::new(),
            capacity: capacity.max(1),
            hits: 0,
        }
    }

    /// Processes one query's kept set; returns the fetch (miss) count.
    /// Every non-resident kept key is fetched. Retention pins the
    /// current kept set (resident members first — the stable,
    /// globally-salient keys) and keeps older residents in the spare
    /// capacity, since a key kept recently is likely kept again soon.
    fn access(&mut self, kept: &[usize]) -> u64 {
        let mut misses = 0u64;
        let kept_set: HashSet<usize> = kept.iter().copied().collect();
        let mut next: Vec<usize> = Vec::with_capacity(self.capacity);
        for &j in kept {
            if self.members.contains(&j) {
                self.hits += 1;
                if next.len() < self.capacity {
                    next.push(j);
                }
            }
        }
        for &j in kept {
            if !self.members.contains(&j) {
                misses += 1;
                if next.len() < self.capacity {
                    next.push(j);
                }
            }
        }
        // Spare room: retain older residents in their previous order.
        if next.len() < self.capacity {
            for &j in self.order.iter() {
                if !kept_set.contains(&j) {
                    next.push(j);
                    if next.len() == self.capacity {
                        break;
                    }
                }
            }
        }
        self.members = next.iter().copied().collect();
        self.order = next;
        misses
    }
}

/// Command-bus occupancy of the thresholding handshake per query
/// (CopyQ beats + ReadP). The handshake and fetches for query i+1 are
/// issued while query i computes (the controller "proactively
/// prefetches" unpruned vectors, §VI), so only the bus occupancy can
/// bound throughput, never the analog latency.
const THRESHOLD_ISSUE_CYCLES: u64 = 4;
/// Transposable-array column width (Table I).
const ARRAY_COLS: usize = 128;
/// Transposable-array wordlines (Table I).
const ARRAY_ROWS: usize = 64;

/// Counts one head under `mode` on `cfg`.
///
/// # Panics
///
/// Panics if the profile has a zero live region (checked by
/// construction in [`HeadProfile`]).
pub fn simulate_head(profile: &HeadProfile, cfg: &SprintConfig, mode: ExecutionMode) -> HeadPerf {
    match mode {
        ExecutionMode::Baseline => dense_like(profile, cfg, mode, profile.seq_len),
        ExecutionMode::MaskOnly => dense_like(profile, cfg, mode, profile.live),
        ExecutionMode::PruningOnly => pruning_only(profile, cfg),
        ExecutionMode::Sprint => sprint(profile, cfg),
    }
}

/// Baseline and MaskOnly differ only in the effective sequence length.
fn dense_like(
    profile: &HeadProfile,
    cfg: &SprintConfig,
    mode: ExecutionMode,
    n: usize,
) -> HeadPerf {
    let u = &cfg.energies;
    let d_bits = (profile.head_dim * 8) as u64;
    let pair_bits = 2 * d_bits;
    let capacity = cfg.kv_capacity_pairs();
    let cpp = cfg.cycles_per_pair();
    let cpt = profile.head_dim.div_ceil(cfg.head_dim.max(1)) as u64;

    let mut energy = EnergyBreakdown::new();
    // Embeddings written to ReRAM once per head (Q, K, V).
    let write_bits = 3 * profile.seq_len as u64 * d_bits;
    energy.charge(Category::ReramWrite, u.reram_write_bits(write_bits));

    // Data movement: the baseline pins as much of the working set as
    // fits (the best a design without SLD can do on a cyclic scan) and
    // restreams the remainder every query. This reproduces the Fig. 1
    // gradient: data movement decreases smoothly with capacity and
    // collapses once the whole sequence fits.
    let refetch = n.saturating_sub(capacity) as u64;
    let fetched_pairs = n as u64 + (n as u64 - 1) * refetch;
    let q_read_bits = n as u64 * d_bits;
    let read_bits = fetched_pairs * pair_bits + q_read_bits;
    energy.charge(Category::ReramRead, u.reram_read_bits(read_bits));

    // Compute: full n x n.
    let qk_dots = (n * n) as u64;
    let vpu_dots = (n * n) as u64;
    let softmax_ops = (n * n) as u64;
    energy.charge(Category::QkPu, u.qk_pu_dot_product * (qk_dots * cpt));
    energy.charge(Category::VPu, u.qk_pu_dot_product * (vpu_dots * cpt));
    energy.charge(Category::Softmax, u.softmax * softmax_ops);

    // On-chip traffic: one K read per QK dot, one V read per V dot;
    // writes on every fetched pair.
    energy.charge(
        Category::OnChipRead,
        u.buffer_access_bits((qk_dots + vpu_dots) * d_bits),
    );
    energy.charge(
        Category::OnChipWrite,
        u.buffer_access_bits(fetched_pairs * pair_bits),
    );

    // Latency: the next query starts once the current query's QK,
    // softmax and xV stages have all drained (§VI), so per-query cost
    // is the stage sum, overlapped with memory streaming.
    let mut cycles = 0u64;
    for q in 0..n {
        let fetch_this = if q == 0 { n as u64 } else { refetch };
        let compute = 3 * (n.div_ceil(cfg.corelets) as u64) * cpt;
        let mem = (fetch_this as f64 * cpp).ceil() as u64;
        cycles += compute.max(mem);
    }

    HeadPerf {
        mode,
        cycles,
        energy,
        bytes_from_memory: read_bits / 8,
        fetched_pairs,
        reused_pairs: (n as u64 * n as u64).saturating_sub(fetched_pairs),
        qk_dots,
        vpu_dots,
        softmax_ops,
    }
}

fn pruning_only(profile: &HeadProfile, cfg: &SprintConfig) -> HeadPerf {
    let u = &cfg.energies;
    let s = profile.seq_len;
    let d_bits = (profile.head_dim * 8) as u64;
    let capacity = cfg.kv_capacity_pairs();
    let cpp = cfg.cycles_per_pair();
    let cpt = profile.head_dim.div_ceil(cfg.head_dim.max(1)) as u64;

    let mut energy = EnergyBreakdown::new();
    let write_bits = 3 * s as u64 * d_bits;
    energy.charge(Category::ReramWrite, u.reram_write_bits(write_bits));

    // K vectors stream for every query (thresholding needs all
    // scores) beyond the pinned capacity; V vectors fetch only after
    // pruning, with reuse.
    let k_refetch = s.saturating_sub(capacity) as u64;
    let mut k_fetch_vectors = s as u64;
    let mut v_buffer = SldResidency::new(capacity);
    let mut v_fetch_vectors = 0u64;
    let mut qk_dots = 0u64;
    let mut vpu_dots = 0u64;
    let mut softmax_ops = 0u64;
    let mut onchip_read_bits = 0u64;
    let mut cycles = 0u64;

    for (q, kept) in profile.kept_per_query.iter().enumerate() {
        let k_this = if q == 0 { s as u64 } else { k_refetch };
        if q > 0 {
            k_fetch_vectors += k_refetch;
        }
        qk_dots += s as u64;
        onchip_read_bits += s as u64 * d_bits;
        let v_this = v_buffer.access(kept);
        v_fetch_vectors += v_this;
        vpu_dots += kept.len() as u64;
        softmax_ops += kept.len() as u64;
        onchip_read_bits += kept.len() as u64 * d_bits;

        // QK runs over every key; only the kept scores flow through
        // softmax and the V-PU — the source of the modest pruning-only
        // speedup (paper: 1.8/1.7/1.7x).
        let compute =
            ((s.div_ceil(cfg.corelets) + 2 * kept.len().div_ceil(cfg.corelets)) as u64) * cpt;
        let mem = (((k_this + v_this) as f64) * cpp / 2.0).ceil() as u64;
        cycles += compute.max(mem);
    }

    let q_read_bits = s as u64 * d_bits;
    let read_bits = (k_fetch_vectors + v_fetch_vectors) * d_bits + q_read_bits;
    energy.charge(Category::ReramRead, u.reram_read_bits(read_bits));
    energy.charge(Category::QkPu, u.qk_pu_dot_product * (qk_dots * cpt));
    energy.charge(Category::VPu, u.qk_pu_dot_product * (vpu_dots * cpt));
    energy.charge(Category::Softmax, u.softmax * softmax_ops);
    energy.charge(Category::OnChipRead, u.buffer_access_bits(onchip_read_bits));
    energy.charge(
        Category::OnChipWrite,
        u.buffer_access_bits((k_fetch_vectors + v_fetch_vectors) * d_bits),
    );

    HeadPerf {
        mode: ExecutionMode::PruningOnly,
        cycles,
        energy,
        bytes_from_memory: read_bits / 8,
        fetched_pairs: (k_fetch_vectors + v_fetch_vectors) / 2,
        reused_pairs: v_buffer.hits,
        qk_dots,
        vpu_dots,
        softmax_ops,
    }
}

fn sprint(profile: &HeadProfile, cfg: &SprintConfig) -> HeadPerf {
    let u = &cfg.energies;
    let live = profile.live;
    let d = profile.head_dim;
    let d_bits = (d * 8) as u64;
    let pair_bits = 2 * d_bits;
    let capacity = cfg.kv_capacity_pairs();
    let cpp = cfg.cycles_per_pair();
    let cpt = d.div_ceil(cfg.head_dim.max(1)) as u64;

    let mut energy = EnergyBreakdown::new();
    let write_bits = 3 * profile.seq_len as u64 * d_bits;
    energy.charge(Category::ReramWrite, u.reram_write_bits(write_bits));

    let col_tiles = live.div_ceil(ARRAY_COLS) as u64;
    let row_tiles = d.div_ceil(ARRAY_ROWS) as u64;

    let mut buffer = SldResidency::new(capacity);
    let mut fetched_pairs = 0u64;
    let mut qk_dots = 0u64;
    let mut softmax_ops = 0u64;
    let mut inmem_ops = 0u64;
    let mut comparator_firings = 0u64;
    let mut onchip_read_bits = 0u64;
    let mut cycles = 0u64;

    for kept in profile.kept_per_query.iter().take(live) {
        // In-memory thresholding (2-D reduction filters padded columns).
        inmem_ops += col_tiles * row_tiles;
        comparator_firings += live as u64;

        // Selective fetch through SLD + finite capacity.
        let misses = buffer.access(kept);
        fetched_pairs += misses;

        qk_dots += kept.len() as u64;
        softmax_ops += kept.len() as u64;
        onchip_read_bits += 2 * kept.len() as u64 * d_bits;

        // Latency: worst CORELET under token interleaving, memory
        // streaming, and the (mostly hidden) handshake.
        let mut per_corelet = vec![0u64; cfg.corelets];
        for &j in kept {
            per_corelet[j % cfg.corelets] += 1;
        }
        let qk_worst = per_corelet.iter().copied().max().unwrap_or(0) * cpt;
        let compute = 3 * qk_worst;
        let mem = (misses as f64 * cpp).ceil() as u64;
        cycles += compute.max(mem).max(THRESHOLD_ISSUE_CYCLES);
    }
    let vpu_dots = qk_dots;
    let reused_pairs = buffer.hits;

    // Reads: fetched pairs (K MSB from transposable arrays + K LSB +
    // V from standard arrays = one pair payload) plus the streamed
    // query vectors. The CopyQ MSB transfers and ReadP pruning vectors
    // stay on the memory-side command path: they are charged to the
    // in-ReRAM-pruning energy but are not K/V/Q data movement (the
    // Fig. 10 metric).
    let q_read_bits = live as u64 * d_bits;
    let copyq_bits = live as u64 * (d as u64 * 4);
    let readp_bits = live as u64 * live as u64 / 8;
    let read_bits = fetched_pairs * pair_bits + q_read_bits;
    energy.charge(Category::ReramRead, u.reram_read_bits(read_bits));
    energy.charge(
        Category::InReramPruning,
        u.in_memory_computation * inmem_ops
            + u.analog_comparator * comparator_firings as f64
            + u.reram_read_bits(copyq_bits + readp_bits),
    );
    energy.charge(Category::QkPu, u.qk_pu_dot_product * (qk_dots * cpt));
    energy.charge(Category::VPu, u.qk_pu_dot_product * (vpu_dots * cpt));
    energy.charge(Category::Softmax, u.softmax * softmax_ops);
    energy.charge(Category::OnChipRead, u.buffer_access_bits(onchip_read_bits));
    energy.charge(
        Category::OnChipWrite,
        u.buffer_access_bits(fetched_pairs * pair_bits),
    );

    HeadPerf {
        mode: ExecutionMode::Sprint,
        cycles,
        energy,
        bytes_from_memory: read_bits / 8,
        fetched_pairs,
        reused_pairs,
        qk_dots,
        vpu_dots,
        softmax_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_like() -> HeadProfile {
        HeadProfile::synthetic(384, 207, 0.254, 0.85, 42)
    }

    fn vit_like() -> HeadProfile {
        HeadProfile::synthetic(197, 197, 0.356, 0.739, 43)
    }

    #[test]
    fn sprint_beats_baseline_on_every_metric() {
        let p = bert_like();
        let cfg = SprintConfig::small();
        let base = simulate_head(&p, &cfg, ExecutionMode::Baseline);
        let spr = simulate_head(&p, &cfg, ExecutionMode::Sprint);
        assert!(spr.cycles < base.cycles);
        assert!(spr.energy.total() < base.energy.total());
        assert!(spr.bytes_from_memory < base.bytes_from_memory);
        assert!(spr.qk_dots < base.qk_dots);
    }

    #[test]
    fn mode_ordering_matches_paper() {
        // Energy: Baseline > PruningOnly > Sprint (Fig. 13);
        // MaskOnly sits between Baseline and Sprint (Fig. 10). Use the
        // capacity-constrained S config, where the distinctions are
        // strict (at ample capacity MaskOnly and Sprint converge, as
        // in the paper's L-SPRINT rows).
        let p = bert_like();
        let cfg = SprintConfig::small();
        let base = simulate_head(&p, &cfg, ExecutionMode::Baseline);
        let mask = simulate_head(&p, &cfg, ExecutionMode::MaskOnly);
        let prune = simulate_head(&p, &cfg, ExecutionMode::PruningOnly);
        let spr = simulate_head(&p, &cfg, ExecutionMode::Sprint);
        assert!(base.energy.total() > prune.energy.total());
        assert!(prune.energy.total() > spr.energy.total());
        assert!(base.bytes_from_memory > mask.bytes_from_memory);
        assert!(mask.bytes_from_memory > spr.bytes_from_memory);
    }

    #[test]
    fn pruning_only_reduction_is_modest() {
        // Fig. 13: ~1.9-2.0x for the SQuAD models, because all QK work
        // and K fetches remain.
        let p = bert_like();
        let cfg = SprintConfig::medium();
        let base = simulate_head(&p, &cfg, ExecutionMode::Baseline);
        let prune = simulate_head(&p, &cfg, ExecutionMode::PruningOnly);
        let reduction = prune.energy_reduction_over(&base);
        assert!(
            (1.4..3.5).contains(&reduction),
            "pruning-only reduction {reduction} outside the paper band"
        );
        // And it is far below SPRINT's reduction.
        let spr = simulate_head(&p, &cfg, ExecutionMode::Sprint);
        assert!(spr.energy_reduction_over(&base) > 2.0 * reduction);
    }

    #[test]
    fn sprint_data_movement_reduction_matches_fig10_band() {
        // Fig. 10: ~98% reduction for BERT-B on S-SPRINT.
        let p = bert_like();
        let cfg = SprintConfig::small();
        let base = simulate_head(&p, &cfg, ExecutionMode::Baseline);
        let spr = simulate_head(&p, &cfg, ExecutionMode::Sprint);
        let red = spr.data_movement_reduction_over(&base);
        assert!(red > 0.90, "reduction {red}");
    }

    #[test]
    fn mask_only_reduction_tracks_padding() {
        // 46% padding: mask-only saves roughly the padded fraction of
        // fetches and the square of it in compute.
        let p = bert_like();
        let cfg = SprintConfig::small();
        let base = simulate_head(&p, &cfg, ExecutionMode::Baseline);
        let mask = simulate_head(&p, &cfg, ExecutionMode::MaskOnly);
        let red = mask.data_movement_reduction_over(&base);
        assert!((0.4..0.95).contains(&red), "mask-only reduction {red}");
        let compute_ratio = mask.qk_dots as f64 / base.qk_dots as f64;
        assert!((compute_ratio - 0.29).abs() < 0.05, "(207/384)^2 = 0.29");
    }

    #[test]
    fn vit_benefits_least() {
        // Fig. 11/12: ViT-B has the smallest gains (no padding, lowest
        // pruning rate, weakest locality).
        let cfg = SprintConfig::small();
        let bert = bert_like();
        let vit = vit_like();
        let bert_speedup = simulate_head(&bert, &cfg, ExecutionMode::Sprint)
            .speedup_over(&simulate_head(&bert, &cfg, ExecutionMode::Baseline));
        let vit_speedup = simulate_head(&vit, &cfg, ExecutionMode::Sprint)
            .speedup_over(&simulate_head(&vit, &cfg, ExecutionMode::Baseline));
        assert!(
            bert_speedup > 1.5 * vit_speedup,
            "bert {bert_speedup} vs vit {vit_speedup}"
        );
        assert!(vit_speedup > 1.0);
    }

    #[test]
    fn larger_configs_move_less_data() {
        // Fig. 10: data movement reduction grows with on-chip capacity.
        let p = bert_like();
        let s = simulate_head(&p, &SprintConfig::small(), ExecutionMode::Sprint);
        let m = simulate_head(&p, &SprintConfig::medium(), ExecutionMode::Sprint);
        let l = simulate_head(&p, &SprintConfig::large(), ExecutionMode::Sprint);
        assert!(s.bytes_from_memory >= m.bytes_from_memory);
        assert!(m.bytes_from_memory >= l.bytes_from_memory);
    }

    #[test]
    fn energy_categories_are_populated_correctly() {
        let p = bert_like();
        let cfg = SprintConfig::medium();
        let base = simulate_head(&p, &cfg, ExecutionMode::Baseline);
        assert_eq!(
            base.energy.get(Category::InReramPruning).as_pj(),
            0.0,
            "baseline never prunes in memory"
        );
        let spr = simulate_head(&p, &cfg, ExecutionMode::Sprint);
        assert!(spr.energy.get(Category::InReramPruning).as_pj() > 0.0);
        // Fig. 13: in SPRINT, ReRAM writes dominate the residual stack.
        assert!(
            spr.energy.get(Category::ReramWrite) > spr.energy.get(Category::ReramRead),
            "writes should outweigh the tiny selective reads"
        );
        // In-memory pruning overhead stays small (paper: ~4% of the
        // SPRINT stack).
        let frac = spr.energy.fraction(Category::InReramPruning);
        assert!(frac < 0.25, "in-memory pruning fraction {frac}");
    }

    #[test]
    fn baseline_memory_fraction_reproduces_fig1_extremes() {
        // 20% capacity at long sequences: memory access dominates
        // (>60%); full capacity: memory access is minor.
        let p = HeadProfile::synthetic(1024, 1024, 0.25, 0.85, 7);
        let mut tight = SprintConfig::small();
        tight.onchip_kib = (1024 * 2 * 64 / 1024) / 5; // 20% of requisite
        let base_tight = simulate_head(&p, &tight, ExecutionMode::Baseline);
        let frac_tight =
            base_tight.energy.memory_access().as_pj() / base_tight.energy.total().as_pj();
        assert!(frac_tight > 0.5, "tight-capacity fraction {frac_tight}");

        let mut ample = SprintConfig::small();
        ample.onchip_kib = 1024 * 2 * 64 / 1024; // 100%
        let base_ample = simulate_head(&p, &ample, ExecutionMode::Baseline);
        let frac_ample =
            base_ample.energy.memory_access().as_pj() / base_ample.energy.total().as_pj();
        assert!(frac_ample < 0.2, "ample-capacity fraction {frac_ample}");
    }

    #[test]
    fn fully_padded_tail_costs_sprint_nothing() {
        let with_pad = HeadProfile::synthetic(256, 128, 0.25, 0.85, 9);
        let no_pad = HeadProfile::synthetic(128, 128, 0.25, 0.85, 9);
        let cfg = SprintConfig::small();
        let a = simulate_head(&with_pad, &cfg, ExecutionMode::Sprint);
        let b = simulate_head(&no_pad, &cfg, ExecutionMode::Sprint);
        // Identical live region: only the one-time embedding writes
        // (which scale with s) differ.
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.qk_dots, b.qk_dots);
    }
}
