//! Ablations of SPRINT's design choices.
//!
//! The paper motivates several decisions qualitatively; these drivers
//! quantify each of them on the reproduction:
//!
//! * [`margin_sweep`] — §III-A: "noise can be compensated by adding a
//!   modest negative margin on top of Th at the cost of the pruning
//!   ratio";
//! * [`cell_bits_sweep`] — §III: 4 bits/cell as "the optimal balance
//!   between robustness and complexity";
//! * [`adc_design`] — §III challenge ②: analog comparators + 1-bit
//!   ADCs instead of 5-bit converters;
//! * [`double_buffering`] — §VI: "does not employ a double-buffering
//!   scheme ... to avoid the doubled cost of memory capacity";
//! * [`residency_policy`] — §VI: the per-CORELET look-up tables and
//!   index buffers vs a plain LRU cache.

use sprint_accelerator::KvBuffer;
use sprint_attention::{quantized_attention, PruneDecision};
use sprint_energy::AdcCostModel;
use sprint_reram::{InMemoryPruner, NoiseModel, ThresholdSpec};
use sprint_workloads::{ModelConfig, ProxyTask, TraceGenerator};

use crate::counting::{simulate_head, ExecutionMode};
use crate::experiments::Scale;
use crate::{ExperimentResult, SprintConfig, SystemError};

/// Extracts the live-region submatrix.
fn submatrix(m: &sprint_attention::Matrix, rows: usize) -> sprint_attention::Matrix {
    let mut out = sprint_attention::Matrix::zeros(rows, m.cols()).expect("non-empty");
    for r in 0..rows {
        out.row_mut(r).copy_from_slice(m.row(r));
    }
    out
}

/// Runs the functional pipeline on one trace with a custom pruner and
/// threshold spec, returning (accuracy, measured prune rate, recall of
/// the digital reference kept set).
fn run_variant(
    trace: &sprint_workloads::HeadTrace,
    task: &ProxyTask,
    pruner: &mut InMemoryPruner,
    spec: &ThresholdSpec,
) -> Result<(f64, f64, f64), SystemError> {
    let live = trace.live_tokens();
    let s = trace.seq_len();
    let mut decisions = Vec::with_capacity(s);
    let mut prune_sum = 0.0;
    let mut recall_sum = 0.0;
    for i in 0..live {
        let outcome = pruner.prune_query(trace.q().row(i), trace.threshold(), spec)?;
        let mut pruned = vec![true; s];
        for (j, flag) in pruned.iter_mut().enumerate().take(live) {
            *flag = outcome.decision.is_pruned(j);
        }
        let reference = PruneDecision::new(
            (0..live)
                .map(|j| trace.reference_decisions()[i].is_pruned(j))
                .collect(),
        );
        recall_sum += sprint_attention::prune_set_overlap(
            &reference,
            &PruneDecision::new(pruned[..live].to_vec()),
        );
        let d = PruneDecision::new(pruned);
        prune_sum += 1.0 - d.kept_count() as f64 / live as f64;
        decisions.push(d);
    }
    for _ in live..s {
        decisions.push(PruneDecision::new(vec![true; s]));
    }
    let out = quantized_attention(
        trace.q(),
        trace.k(),
        trace.v(),
        &trace.config(),
        Some(&decisions),
    )?;
    let score = task.evaluate(&out.output)?;
    Ok((
        score.accuracy,
        prune_sum / live as f64,
        recall_sum / live as f64,
    ))
}

/// §III-A margin ablation: threshold margin vs pruning rate, reference
/// recall and task accuracy.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn margin_sweep(scale: &Scale) -> Result<ExperimentResult, SystemError> {
    let model = ModelConfig::bert_base();
    let spec = model.trace_spec().with_seq_len(scale.accuracy_seq);
    let trace = TraceGenerator::new(scale.seed ^ 0x3a5).generate(&spec)?;
    let task = ProxyTask::new(&trace, &model, scale.seed ^ 0x3a6)?;
    let live = trace.live_tokens();
    let noise = NoiseModel::default();

    let mut result = ExperimentResult::new(
        "abl-margin",
        "Threshold margin vs pruning rate / recall / accuracy (BERT-B proxy)",
    )
    .headers(["Margin", "Prune rate", "Reference recall", "Accuracy"]);
    for sigmas in [0.0, 1.0, 3.0, 5.0] {
        let mut pruner = InMemoryPruner::new(
            &submatrix(trace.q(), live),
            &submatrix(trace.k(), live),
            trace.config().scale(),
            noise,
            scale.seed ^ 0x3a7,
        )?;
        let threshold_spec = ThresholdSpec {
            score_bits: None,
            margin_fraction: sigmas * noise.relative_sigma(),
        };
        let (acc, prune_rate, recall) = run_variant(&trace, &task, &mut pruner, &threshold_spec)?;
        result.push_row([
            format!("{sigmas:.0} sigma"),
            format!("{:.1}%", prune_rate * 100.0),
            format!("{:.1}%", recall * 100.0),
            format!("{:.1}%", acc * 100.0),
        ]);
    }
    result.push_note(
        "paper (III-A): a modest negative margin on top of Th protects accuracy \
         at the cost of the pruning ratio",
    );
    Ok(result)
}

/// §III bits-per-cell ablation: storage density vs robustness.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn cell_bits_sweep(scale: &Scale) -> Result<ExperimentResult, SystemError> {
    let model = ModelConfig::bert_base();
    let spec = model.trace_spec().with_seq_len(scale.accuracy_seq);
    let trace = TraceGenerator::new(scale.seed ^ 0x3b5).generate(&spec)?;
    let task = ProxyTask::new(&trace, &model, scale.seed ^ 0x3b6)?;
    let live = trace.live_tokens();
    let d = trace.config().d();

    let mut result = ExperimentResult::new(
        "abl-cell-bits",
        "MLC bits/cell: density vs robustness (BERT-B proxy)",
    )
    .headers(["Bits/cell", "MSB bits stored/key", "Prune rate", "Accuracy"]);
    for bits in [2u32, 3, 4, 5, 6] {
        let mut pruner = InMemoryPruner::with_cell_bits(
            &submatrix(trace.q(), live),
            &submatrix(trace.k(), live),
            trace.config().scale(),
            NoiseModel::default(),
            scale.seed ^ 0x3b7,
            bits,
        )?;
        let (acc, prune_rate, _) =
            run_variant(&trace, &task, &mut pruner, &ThresholdSpec::default())?;
        result.push_row([
            format!("{bits}"),
            format!("{}", d as u32 * bits),
            format!("{:.1}%", prune_rate * 100.0),
            format!("{:.1}%", acc * 100.0),
        ]);
    }
    result.push_note(
        "paper (III): four bits/cell is the optimal balance between robustness \
         and sensing complexity — fewer bits approximate poorly, denser cells \
         amplify circuit noise",
    );
    Ok(result)
}

/// §III challenge ② — the converter design choice: analog comparator +
/// 1-bit ADC vs a multi-bit ADC per column.
pub fn adc_design() -> ExperimentResult {
    let adc = AdcCostModel::default();
    let comparator = sprint_energy::UnitEnergies::default().analog_comparator;
    let mut result = ExperimentResult::new(
        "abl-adc",
        "Converter design choice: b-bit ADC vs analog comparator per column",
    )
    .headers([
        "Output bits",
        "Rel. power",
        "Rel. area",
        "Energy / 128 columns",
    ]);
    for bits in [1u32, 2, 3, 4, 5, 6] {
        let energy = comparator * (128.0 * adc.relative_power(bits));
        result.push_row([
            format!("{bits}"),
            format!("{:.1}x", adc.relative_power(bits)),
            format!("{:.1}x", adc.relative_area(bits)),
            format!("{energy}"),
        ]);
    }
    result.push_note(
        "paper: a 5-bit ADC costs >20x the power and >30x the area of the 1-bit \
         comparator SPRINT uses after analog thresholding",
    );
    result
}

/// §VI double-buffering ablation: halving usable K/V capacity (the
/// price of double buffering) vs the fetch traffic it would hide.
pub fn double_buffering(scale: &Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "abl-double-buffer",
        "Double buffering: halved usable capacity vs extra fetches (SPRINT mode)",
    )
    .headers([
        "Model",
        "Config",
        "Fetched (single)",
        "Fetched (double-buffered)",
        "Energy cost",
    ]);
    for (i, model) in [
        ModelConfig::bert_base(),
        ModelConfig::gpt2_large(),
        ModelConfig::synth2(),
    ]
    .into_iter()
    .enumerate()
    {
        let profile = scale.profile(&model, 0xdb + i as u64);
        for cfg in [SprintConfig::small(), SprintConfig::medium()] {
            let single = simulate_head(&profile, &cfg, ExecutionMode::Sprint);
            let mut halved = cfg.clone();
            halved.onchip_kib = (cfg.onchip_kib / 2).max(1);
            let double = simulate_head(&profile, &halved, ExecutionMode::Sprint);
            result.push_row([
                model.name.to_string(),
                cfg.name.to_string(),
                format!("{}", single.fetched_pairs),
                format!("{}", double.fetched_pairs),
                format!(
                    "{:.2}x",
                    double.energy.total().as_pj() / single.energy.total().as_pj()
                ),
            ]);
        }
    }
    result.push_note(
        "paper (VI): SPRINT forgoes double buffering; spatial locality makes new \
         fetches infrequent, so the halved capacity would cost more than the \
         stalls it hides",
    );
    result
}

/// §VI residency-policy ablation: the SLD-informed look-up tables vs a
/// plain LRU cache of the same capacity.
pub fn residency_policy(scale: &Scale) -> ExperimentResult {
    let cfg = SprintConfig::medium();
    let mut result = ExperimentResult::new(
        "abl-residency",
        "K/V residency policy on M-SPRINT: SLD-informed vs plain LRU",
    )
    .headers([
        "Model",
        "Kept/query",
        "Fetched (SLD)",
        "Fetched (LRU)",
        "LRU penalty",
    ]);
    for (i, model) in ModelConfig::all().into_iter().enumerate() {
        let profile = scale.profile(&model, 0xe0 + i as u64);
        let sld = simulate_head(&profile, &cfg, ExecutionMode::Sprint);

        // Plain LRU over the same kept sets and capacity.
        let mut lru = KvBuffer::new(cfg.kv_capacity_pairs()).expect("capacity > 0");
        let mut lru_fetched = 0u64;
        for kept in profile.kept_per_query.iter().take(profile.live) {
            for &j in kept {
                if !lru.touch(j) {
                    lru.insert(j);
                    lru_fetched += 1;
                }
            }
        }
        result.push_row([
            model.name.to_string(),
            format!("{:.0}", profile.mean_kept()),
            format!("{}", sld.fetched_pairs),
            format!("{lru_fetched}"),
            format!(
                "{:.2}x",
                lru_fetched as f64 / sld.fetched_pairs.max(1) as f64
            ),
        ]);
    }
    result.push_note(
        "the unpruned-index buffers let the controller retain exactly what the \
         next queries keep; LRU thrashes once the kept working set cycles past \
         the capacity (GPT-2-L and the Synth models)",
    );
    result
}

/// §III footnote 6 — the heterogeneous memory alternative: DRAM for
/// the storage-only matrices (Q, V, K LSBs) with small ReRAM crossbars
/// reserved for in-memory thresholding, vs the paper's homogeneous
/// ReRAM organization.
pub fn heterogeneous_memory(scale: &Scale) -> ExperimentResult {
    // Representative per-bit access costs: ReRAM from Table II
    // (3.1 / 24.4 pJ per bit read/write); LPDDR4-class DRAM including
    // interface energy is roughly symmetric at ~5 pJ/bit.
    const RERAM_READ: f64 = 3.1;
    const RERAM_WRITE: f64 = 24.4;
    const DRAM_READ: f64 = 5.0;
    const DRAM_WRITE: f64 = 5.0;

    let cfg = SprintConfig::medium();
    let mut result = ExperimentResult::new(
        "abl-hetero",
        "Homogeneous ReRAM vs DRAM + ReRAM-thresholding hybrid (M-SPRINT)",
    )
    .headers([
        "Model",
        "Memory energy (ReRAM)",
        "Memory energy (hybrid)",
        "Hybrid gain",
    ]);
    for (i, model) in ModelConfig::all().into_iter().enumerate() {
        let profile = scale.profile(&model, 0xf0 + i as u64);
        let perf = simulate_head(&profile, &cfg, ExecutionMode::Sprint);
        let d_bits = (profile.head_dim * 8) as u64;
        let s = profile.seq_len as u64;
        let live = profile.live as u64;

        // Bit inventory of the SPRINT flow (matching counting::sprint).
        let msb_bits_per_key = (profile.head_dim * 4) as u64;
        let write_msb = s * msb_bits_per_key; // K MSBs -> transposable ReRAM
        let write_rest = s * (3 * d_bits) - write_msb; // Q, V, K LSBs
        let read_msb = perf.fetched_pairs * msb_bits_per_key;
        let read_rest = perf.fetched_pairs * (2 * d_bits - msb_bits_per_key) + live * d_bits;

        let homogeneous = (write_msb + write_rest) as f64 * RERAM_WRITE
            + (read_msb + read_rest) as f64 * RERAM_READ;
        let hybrid = write_msb as f64 * RERAM_WRITE
            + write_rest as f64 * DRAM_WRITE
            + read_msb as f64 * RERAM_READ
            + read_rest as f64 * DRAM_READ;
        result.push_row([
            model.name.to_string(),
            format!("{}", sprint_energy::Energy::from_pj(homogeneous)),
            format!("{}", sprint_energy::Energy::from_pj(hybrid)),
            format!("{:.2}x", homogeneous / hybrid),
        ]);
    }
    result.push_note(
        "paper (III, footnote): Q/V could live in DRAM with small ReRAM crossbars          only for thresholding; ReRAM's costly writes make the hybrid win on every          workload, at the price of a second memory technology",
    );
    result
}

/// All ablations at the given scale.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn all(scale: &Scale) -> Result<Vec<ExperimentResult>, SystemError> {
    Ok(vec![
        margin_sweep(scale)?,
        cell_bits_sweep(scale)?,
        adc_design(),
        double_buffering(scale),
        residency_policy(scale),
        heterogeneous_memory(scale),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> Scale {
        Scale {
            seq_cap: 192,
            accuracy_seq: 80,
            seed: 0xab1,
        }
    }

    fn parse_pct(s: &str) -> f64 {
        s.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn margin_trades_pruning_rate_for_recall() {
        let r = margin_sweep(&scale()).unwrap();
        assert_eq!(r.rows.len(), 4);
        let prune_first = parse_pct(&r.rows[0][1]);
        let prune_last = parse_pct(&r.rows[3][1]);
        let recall_first = parse_pct(&r.rows[0][2]);
        let recall_last = parse_pct(&r.rows[3][2]);
        assert!(
            prune_last < prune_first,
            "margins must lower the pruning rate: {prune_first} -> {prune_last}"
        );
        assert!(
            recall_last >= recall_first,
            "margins must not lower recall: {recall_first} -> {recall_last}"
        );
    }

    #[test]
    fn cell_bits_peak_around_four() {
        let r = cell_bits_sweep(&scale()).unwrap();
        let acc: Vec<f64> = r.rows.iter().map(|row| parse_pct(&row[3])).collect();
        // 2 bits is the worst of the shallow options; 4 bits is no
        // worse than 2 and within noise of the best.
        assert!(
            acc[2] >= acc[0],
            "4-bit ({}) must beat 2-bit ({})",
            acc[2],
            acc[0]
        );
        let best = acc.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            best - acc[2] < 12.0,
            "4-bit ({}) within 12 points of the best ({best})",
            acc[2]
        );
    }

    #[test]
    fn adc_table_reproduces_cited_ratios() {
        let r = adc_design();
        let five_bit_power: f64 = r.rows[4][1].trim_end_matches('x').parse().unwrap();
        let five_bit_area: f64 = r.rows[4][2].trim_end_matches('x').parse().unwrap();
        assert!(five_bit_power > 20.0);
        assert!(five_bit_area > 30.0);
    }

    #[test]
    fn double_buffering_never_reduces_fetches() {
        let r = double_buffering(&scale());
        for row in &r.rows {
            let single: u64 = row[2].parse().unwrap();
            let double: u64 = row[3].parse().unwrap();
            assert!(double >= single, "{row:?}");
        }
    }

    #[test]
    fn hybrid_memory_wins_on_write_dominated_workloads() {
        // ReRAM writes cost ~5x a DRAM access, so the hybrid pays off
        // wherever the one-time embedding writes dominate the selective
        // reads (the short padded workloads); read-heavy workloads may
        // mildly favour homogeneous ReRAM (3.1 vs 5 pJ/bit reads).
        let r = heterogeneous_memory(&scale());
        let bert_gain: f64 = r.rows[0][3].trim_end_matches('x').parse().unwrap();
        assert!(bert_gain > 1.5, "BERT-B hybrid gain {bert_gain}");
        for row in &r.rows {
            let gain: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(gain > 0.8, "hybrid should never lose badly: {row:?}");
        }
    }

    #[test]
    fn lru_never_beats_sld_residency() {
        let r = residency_policy(&scale());
        for row in &r.rows {
            let penalty: f64 = row[4].trim_end_matches('x').parse().unwrap();
            assert!(penalty >= 0.99, "{row:?}");
        }
    }
}
