//! The functional end-to-end SPRINT system (Fig. 7 dataflow).
//!
//! Runs actual numbers through the full pipeline: quantized key MSBs in
//! transposable ReRAM, analog thresholding with noise, the memory
//! controller's SLD/selective fetch, and the on-chip 8-bit recompute
//! datapath. Used by the accuracy studies (Figs. 5 and 9) and the
//! integration tests; the performance figures use the counting
//! simulator instead (same split as the paper).

use serde::{Deserialize, Serialize};

use sprint_attention::{
    quantized_attention_with, softmax_inplace, AttentionError, Matrix, PruneDecision, Workspace,
};
use sprint_memory::{MemoryController, MemoryError, MemoryStats};
use sprint_reram::{InMemoryPruner, NoiseModel, PruneHardwareStats, ReramError, ThresholdSpec};
use sprint_workloads::HeadTrace;

use crate::SprintConfig;

/// Errors from the end-to-end system (any substrate can fail).
#[derive(Debug)]
pub enum SystemError {
    /// Attention math error.
    Attention(AttentionError),
    /// ReRAM substrate error.
    Reram(ReramError),
    /// Memory subsystem error.
    Memory(MemoryError),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Attention(e) => write!(f, "attention: {e}"),
            SystemError::Reram(e) => write!(f, "reram: {e}"),
            SystemError::Memory(e) => write!(f, "memory: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<AttentionError> for SystemError {
    fn from(e: AttentionError) -> Self {
        SystemError::Attention(e)
    }
}

impl From<ReramError> for SystemError {
    fn from(e: ReramError) -> Self {
        SystemError::Reram(e)
    }
}

impl From<MemoryError> for SystemError {
    fn from(e: MemoryError) -> Self {
        SystemError::Memory(e)
    }
}

/// The output of one functional head execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemOutput {
    /// Final attention values (`s × d`).
    pub output: Matrix,
    /// The in-memory pruning decisions actually applied.
    pub decisions: Vec<PruneDecision>,
    /// ReRAM-side operation counters.
    pub prune_stats: PruneHardwareStats,
    /// Memory-controller statistics (fetches, reuse, commands).
    pub memory_stats: MemoryStats,
}

/// The functional SPRINT system for one configuration.
///
/// # Example
///
/// ```
/// use sprint_core::{SprintConfig, SprintSystem};
/// use sprint_reram::{NoiseModel, ThresholdSpec};
/// use sprint_workloads::{ModelConfig, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = ModelConfig::vit_base().trace_spec().with_seq_len(48);
/// let trace = TraceGenerator::new(3).generate(&spec)?;
/// let mut sys = SprintSystem::new(SprintConfig::small(), NoiseModel::ideal(), 1);
/// let out = sys.run_head(&trace, &ThresholdSpec::default(), true)?;
/// assert_eq!(out.output.rows(), 48);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SprintSystem {
    config: SprintConfig,
    noise: NoiseModel,
    seed: u64,
}

impl SprintSystem {
    /// Creates a system with the given hardware configuration and
    /// analog noise model.
    pub fn new(config: SprintConfig, noise: NoiseModel, seed: u64) -> Self {
        SprintSystem {
            config,
            noise,
            seed,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &SprintConfig {
        &self.config
    }

    /// Runs one head end to end.
    ///
    /// With `recompute == true` (SPRINT proper) the surviving scores
    /// are recomputed in the 8-bit digital datapath; with `false`
    /// ("SPRINT w/o recompute", Fig. 9 third bar) the approximate
    /// analog scores feed the softmax directly.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn run_head(
        &mut self,
        trace: &HeadTrace,
        spec: &ThresholdSpec,
        recompute: bool,
    ) -> Result<SystemOutput, SystemError> {
        let live = trace.live_tokens();
        let s = trace.seq_len();
        let threshold = trace.threshold();

        // In-memory pruning over the live region only (the 2-D
        // reduction filters padded rows/columns before memory ever
        // sees them).
        let q_live = submatrix(trace.q(), live)?;
        let k_live = submatrix(trace.k(), live)?;
        let mut pruner = InMemoryPruner::new(
            &q_live,
            &k_live,
            trace.config().scale(),
            self.noise,
            self.seed,
        )?;

        let mut controller =
            MemoryController::new(self.config.memory_geometry(), self.config.timing)?;
        controller.start_new_head();

        let mut decisions = Vec::with_capacity(s);
        let mut approx_rows: Vec<Vec<f32>> = Vec::with_capacity(live);
        for i in 0..live {
            let outcome = pruner.prune_query(q_live.row(i), threshold, spec)?;
            // Extend the live-region decision to the full sequence:
            // padded keys are always pruned.
            let mut pruned = vec![true; s];
            for (j, flag) in pruned.iter_mut().enumerate().take(live) {
                *flag = outcome.decision.is_pruned(j);
            }
            controller.process_query(&pruned[..live])?;
            let mut row = vec![f32::NEG_INFINITY; s];
            for j in 0..live {
                if !pruned[j] {
                    row[j] = outcome.approx_scores[j];
                }
            }
            approx_rows.push(row);
            decisions.push(PruneDecision::new(pruned));
        }
        for _ in live..s {
            decisions.push(PruneDecision::new(vec![true; s]));
        }

        let mut ws = Workspace::new();
        let output = if recompute {
            // On-chip recompute: full-precision (8-bit datapath) scores
            // for every surviving key.
            quantized_attention_with(
                trace.q(),
                trace.k(),
                trace.v(),
                &trace.config(),
                Some(&decisions),
                &mut ws,
            )?
            .output
        } else {
            // No recompute: the approximate in-memory scores drive the
            // softmax and weighted sum directly. The workspace stages
            // each probability row; surviving keys accumulate row-wise.
            let mut out = Matrix::zeros(s, trace.v().cols())?;
            let prow = ws.prob_row(s);
            for (i, row) in approx_rows.iter().enumerate() {
                prow.copy_from_slice(row);
                softmax_inplace(prow);
                let orow = out.row_mut(i);
                for (j, &p) in prow.iter().enumerate() {
                    if p > 0.0 {
                        for (o, &vx) in orow.iter_mut().zip(trace.v().row(j)) {
                            *o += p * vx;
                        }
                    }
                }
            }
            out
        };

        Ok(SystemOutput {
            output,
            decisions,
            prune_stats: pruner.stats(),
            memory_stats: controller.stats(),
        })
    }
}

/// The first `rows` rows of `m` as an owned matrix.
fn submatrix(m: &Matrix, rows: usize) -> Result<Matrix, AttentionError> {
    let mut out = Matrix::zeros(rows, m.cols())?;
    for r in 0..rows {
        out.row_mut(r).copy_from_slice(m.row(r));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_attention::pruned_attention;
    use sprint_workloads::{ModelConfig, TraceGenerator};

    fn small_trace() -> HeadTrace {
        let spec = ModelConfig::bert_base().trace_spec().with_seq_len(64);
        TraceGenerator::new(17).generate(&spec).unwrap()
    }

    #[test]
    fn ideal_system_matches_digital_reference_decisions_closely() {
        let trace = small_trace();
        let mut sys = SprintSystem::new(SprintConfig::small(), NoiseModel::ideal(), 5);
        let out = sys
            .run_head(&trace, &ThresholdSpec::default(), true)
            .unwrap();
        // With ideal analog hardware the only divergence from the
        // digital reference is the 4-bit MSB approximation; the kept
        // sets must still agree on the overwhelming majority of keys.
        let reference = trace.reference_decisions();
        let live = trace.live_tokens();
        let mut agree = 0usize;
        let mut total = 0usize;
        for (d, r) in out.decisions.iter().zip(reference.iter()).take(live) {
            for j in 0..live {
                total += 1;
                if d.is_pruned(j) == r.is_pruned(j) {
                    agree += 1;
                }
            }
        }
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.9, "decision agreement {rate}");
    }

    #[test]
    fn recompute_output_tracks_pruned_reference() {
        let trace = small_trace();
        let mut sys = SprintSystem::new(SprintConfig::small(), NoiseModel::ideal(), 5);
        let out = sys
            .run_head(&trace, &ThresholdSpec::default(), true)
            .unwrap();
        let (reference, _) = pruned_attention(
            trace.q(),
            trace.k(),
            trace.v(),
            &trace.config(),
            trace.threshold(),
            Some(&trace.padding()),
        )
        .unwrap();
        let mae = sprint_attention::mean_abs_error(&out.output, &reference.output).unwrap();
        assert!(mae < 0.1, "recomputed output off by {mae}");
    }

    #[test]
    fn no_recompute_is_worse_than_recompute() {
        let trace = small_trace();
        let noise = NoiseModel::default();
        let (reference, _) = pruned_attention(
            trace.q(),
            trace.k(),
            trace.v(),
            &trace.config(),
            f32::MIN,
            Some(&trace.padding()),
        )
        .unwrap();
        let mut sys_a = SprintSystem::new(SprintConfig::small(), noise, 5);
        let with = sys_a
            .run_head(&trace, &ThresholdSpec::default(), true)
            .unwrap();
        let mut sys_b = SprintSystem::new(SprintConfig::small(), noise, 5);
        let without = sys_b
            .run_head(&trace, &ThresholdSpec::default(), false)
            .unwrap();
        let err_with = sprint_attention::mean_abs_error(&with.output, &reference.output).unwrap();
        let err_without =
            sprint_attention::mean_abs_error(&without.output, &reference.output).unwrap();
        assert!(
            err_without > err_with,
            "no-recompute ({err_without}) must be worse than recompute ({err_with})"
        );
    }

    #[test]
    fn memory_stats_show_spatial_reuse() {
        let trace = small_trace();
        let mut sys = SprintSystem::new(SprintConfig::small(), NoiseModel::ideal(), 5);
        let out = sys
            .run_head(&trace, &ThresholdSpec::default(), true)
            .unwrap();
        let stats = out.memory_stats;
        assert!(
            stats.reused_vectors > stats.fetched_vectors,
            "locality should dominate: reused {} vs fetched {}",
            stats.reused_vectors,
            stats.fetched_vectors
        );
        assert_eq!(stats.queries as usize, trace.live_tokens());
    }

    #[test]
    fn padded_queries_produce_zero_rows() {
        let trace = small_trace();
        let mut sys = SprintSystem::new(SprintConfig::small(), NoiseModel::ideal(), 5);
        let out = sys
            .run_head(&trace, &ThresholdSpec::default(), true)
            .unwrap();
        for i in trace.live_tokens()..trace.seq_len() {
            assert!(out.output.row(i).iter().all(|&x| x == 0.0), "row {i}");
            assert_eq!(out.decisions[i].kept_count(), 0);
        }
    }
}
