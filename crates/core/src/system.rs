//! The legacy end-to-end entry point, shimmed over [`sprint_engine`].
//!
//! `SprintSystem` was the seed API for running one head through the
//! functional pipeline (in-memory thresholding → selective fetch →
//! on-chip recompute). It survives as a thin shim over
//! [`sprint_engine::Engine`] so the pre-redesign call sites (and the
//! equivalence tests pinning the engine to the seed outputs) keep
//! working: `run_head(trace, spec, recompute)` maps onto
//! [`ExecutionMode::Sprint`] / [`ExecutionMode::NoRecompute`] with the
//! system's raw seed, which the engine reproduces bit-for-bit. New
//! code should use the engine directly — it reuses substrate state
//! across heads and serves batches.
//!
//! [`ExecutionMode::Sprint`]: sprint_engine::ExecutionMode::Sprint
//! [`ExecutionMode::NoRecompute`]: sprint_engine::ExecutionMode::NoRecompute

use sprint_engine::{Engine, ExecutionMode, HeadRequest, HeadResponse, SystemError};
use sprint_reram::{NoiseModel, ThresholdSpec};
use sprint_workloads::HeadTrace;

use crate::SprintConfig;

/// The output of one functional head execution — now an alias of the
/// engine's [`HeadResponse`] (the field set is unchanged).
pub type SystemOutput = HeadResponse;

/// The functional SPRINT system for one configuration (legacy shim
/// over [`sprint_engine::Engine`]).
///
/// # Example
///
/// ```
/// use sprint_core::{SprintConfig, SprintSystem};
/// use sprint_reram::{NoiseModel, ThresholdSpec};
/// use sprint_workloads::{ModelConfig, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = ModelConfig::vit_base().trace_spec().with_seq_len(48);
/// let trace = TraceGenerator::new(3).generate(&spec)?;
/// let mut sys = SprintSystem::new(SprintConfig::small(), NoiseModel::ideal(), 1);
/// let out = sys.run_head(&trace, &ThresholdSpec::default(), true)?;
/// assert_eq!(out.output.rows(), 48);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SprintSystem {
    config: SprintConfig,
    noise: NoiseModel,
    seed: u64,
    /// Built lazily so `new` stays infallible (the seed API deferred
    /// configuration validation to `run_head`).
    engine: Option<Engine>,
}

impl SprintSystem {
    /// Creates a system with the given hardware configuration and
    /// analog noise model.
    pub fn new(config: SprintConfig, noise: NoiseModel, seed: u64) -> Self {
        SprintSystem {
            config,
            noise,
            seed,
            engine: None,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &SprintConfig {
        &self.config
    }

    /// Runs one head end to end.
    ///
    /// With `recompute == true` (SPRINT proper) the surviving scores
    /// are recomputed in the 8-bit digital datapath; with `false`
    /// ("SPRINT w/o recompute", Fig. 9 third bar) the approximate
    /// analog scores feed the softmax directly.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn run_head(
        &mut self,
        trace: &HeadTrace,
        spec: &ThresholdSpec,
        recompute: bool,
    ) -> Result<SystemOutput, SystemError> {
        if self.engine.is_none() {
            self.engine = Some(
                Engine::builder(self.config.clone())
                    .noise(self.noise)
                    .seed(self.seed)
                    .worker_slots(1)
                    .build()
                    .map_err(SystemError::from)?,
            );
        }
        let engine = self.engine.as_ref().expect("engine just built");
        let mode = if recompute {
            ExecutionMode::Sprint
        } else {
            ExecutionMode::NoRecompute
        };
        let request = HeadRequest::from_trace(trace)
            .with_mode(mode)
            .with_threshold_spec(*spec);
        // The raw (underived) seed: exactly what the seed path fed its
        // per-call pruner, so outputs stay bit-identical.
        engine
            .run_head_seeded(&request, self.seed)
            .map_err(SystemError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_attention::pruned_attention;
    use sprint_workloads::{ModelConfig, TraceGenerator};

    fn small_trace() -> HeadTrace {
        let spec = ModelConfig::bert_base().trace_spec().with_seq_len(64);
        TraceGenerator::new(17).generate(&spec).unwrap()
    }

    #[test]
    fn ideal_system_matches_digital_reference_decisions_closely() {
        let trace = small_trace();
        let mut sys = SprintSystem::new(SprintConfig::small(), NoiseModel::ideal(), 5);
        let out = sys
            .run_head(&trace, &ThresholdSpec::default(), true)
            .unwrap();
        // With ideal analog hardware the only divergence from the
        // digital reference is the 4-bit MSB approximation; the kept
        // sets must still agree on the overwhelming majority of keys.
        let reference = trace.reference_decisions();
        let live = trace.live_tokens();
        let mut agree = 0usize;
        let mut total = 0usize;
        for (d, r) in out.decisions.iter().zip(reference.iter()).take(live) {
            for j in 0..live {
                total += 1;
                if d.is_pruned(j) == r.is_pruned(j) {
                    agree += 1;
                }
            }
        }
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.9, "decision agreement {rate}");
    }

    #[test]
    fn recompute_output_tracks_pruned_reference() {
        let trace = small_trace();
        let mut sys = SprintSystem::new(SprintConfig::small(), NoiseModel::ideal(), 5);
        let out = sys
            .run_head(&trace, &ThresholdSpec::default(), true)
            .unwrap();
        let (reference, _) = pruned_attention(
            trace.q(),
            trace.k(),
            trace.v(),
            &trace.config(),
            trace.threshold(),
            Some(&trace.padding()),
        )
        .unwrap();
        let mae = sprint_attention::mean_abs_error(&out.output, &reference.output).unwrap();
        assert!(mae < 0.1, "recomputed output off by {mae}");
    }

    #[test]
    fn no_recompute_is_worse_than_recompute() {
        let trace = small_trace();
        let noise = NoiseModel::default();
        let (reference, _) = pruned_attention(
            trace.q(),
            trace.k(),
            trace.v(),
            &trace.config(),
            f32::MIN,
            Some(&trace.padding()),
        )
        .unwrap();
        let mut sys_a = SprintSystem::new(SprintConfig::small(), noise, 5);
        let with = sys_a
            .run_head(&trace, &ThresholdSpec::default(), true)
            .unwrap();
        let mut sys_b = SprintSystem::new(SprintConfig::small(), noise, 5);
        let without = sys_b
            .run_head(&trace, &ThresholdSpec::default(), false)
            .unwrap();
        let err_with = sprint_attention::mean_abs_error(&with.output, &reference.output).unwrap();
        let err_without =
            sprint_attention::mean_abs_error(&without.output, &reference.output).unwrap();
        assert!(
            err_without > err_with,
            "no-recompute ({err_without}) must be worse than recompute ({err_with})"
        );
    }

    #[test]
    fn memory_stats_show_spatial_reuse() {
        let trace = small_trace();
        let mut sys = SprintSystem::new(SprintConfig::small(), NoiseModel::ideal(), 5);
        let out = sys
            .run_head(&trace, &ThresholdSpec::default(), true)
            .unwrap();
        let stats = out.memory_stats;
        assert!(
            stats.reused_vectors > stats.fetched_vectors,
            "locality should dominate: reused {} vs fetched {}",
            stats.reused_vectors,
            stats.fetched_vectors
        );
        assert_eq!(stats.queries as usize, trace.live_tokens());
    }

    #[test]
    fn padded_queries_produce_zero_rows() {
        let trace = small_trace();
        let mut sys = SprintSystem::new(SprintConfig::small(), NoiseModel::ideal(), 5);
        let out = sys
            .run_head(&trace, &ThresholdSpec::default(), true)
            .unwrap();
        for i in trace.live_tokens()..trace.seq_len() {
            assert!(out.output.row(i).iter().all(|&x| x == 0.0), "row {i}");
            assert_eq!(out.decisions[i].kept_count(), 0);
        }
    }

    #[test]
    fn shim_matches_the_frozen_seed_pipeline_bitwise() {
        // The shim's contract: identical outputs to the pre-engine
        // implementation, preserved in sprint_engine::reference.
        let trace = small_trace();
        let noise = NoiseModel::default();
        let spec = ThresholdSpec::default();
        for (recompute, mode) in [
            (true, ExecutionMode::Sprint),
            (false, ExecutionMode::NoRecompute),
        ] {
            let mut sys = SprintSystem::new(SprintConfig::medium(), noise, 41);
            let got = sys.run_head(&trace, &spec, recompute).unwrap();
            let request = HeadRequest::from_trace(&trace).with_mode(mode);
            let want = sprint_engine::reference::run_head_frozen(
                &request,
                &SprintConfig::medium(),
                noise,
                41,
                &spec,
                mode,
            )
            .unwrap();
            assert_eq!(got, want, "recompute = {recompute}");
        }
    }
}
