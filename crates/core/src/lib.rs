//! SPRINT: sparse attention acceleration with synergistic in-memory
//! pruning and on-chip recomputation.
//!
//! This is the top-level crate of the reproduction: it assembles the
//! substrates (`sprint-reram`, `sprint-memory`, `sprint-accelerator`,
//! `sprint-attention`, `sprint-workloads`, `sprint-energy`) into
//!
//! * [`SprintConfig`] — the S/M/L hardware configurations of Table I;
//! * [`SprintSystem`] — the functional end-to-end pipeline (in-memory
//!   thresholding → selective fetch → on-chip recompute) used for the
//!   accuracy studies of Figs. 5 and 9;
//! * [`HeadProfile`] / [`counting`] — the operation-counting
//!   performance and energy simulator of §VII, reproducing Figs. 1 and
//!   10–13 and Table III;
//! * [`experiments`] — one driver per paper table/figure, each
//!   emitting an [`ExperimentResult`] with the same rows/series the
//!   paper reports.
//!
//! # Example
//!
//! ```
//! use sprint_core::{ExecutionMode, HeadProfile, SprintConfig};
//!
//! // Count one BERT-like head on S-SPRINT vs its baseline.
//! let profile = HeadProfile::synthetic(128, 96, 0.25, 0.85, 7);
//! let cfg = SprintConfig::small();
//! let base = sprint_core::counting::simulate_head(&profile, &cfg, ExecutionMode::Baseline);
//! let sprint = sprint_core::counting::simulate_head(&profile, &cfg, ExecutionMode::Sprint);
//! assert!(sprint.energy.total() < base.energy.total());
//! assert!(sprint.cycles < base.cycles);
//! ```

pub mod ablations;
pub mod counting;
pub mod experiments;

mod accuracy;
mod ffn;
mod prior_art;
mod profile;
mod report;
mod system;

pub use accuracy::{
    bit_sensitivity, evaluate_scenarios, mean_degradation, AccuracyScenario, ScenarioScores,
};
pub use counting::{ExecutionMode, HeadPerf};
pub use ffn::{end_to_end, EndToEnd, FfnConfig};
pub use prior_art::{sprint_metrics, AcceleratorMetrics, PriorArt};
pub use profile::{HeadProfile, SyntheticHeadSpec};
pub use report::{geomean, results_to_json, ExperimentResult};
// The hardware configuration and the legacy error now live in
// `sprint-engine` (the serving front door); re-exported here so every
// pre-engine path keeps compiling.
pub use sprint_engine::{SprintConfig, SystemError};
pub use system::{SprintSystem, SystemOutput};
