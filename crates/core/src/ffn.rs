//! End-to-end execution including the feed-forward networks (§VII
//! "End-to-End comparison including fully-connected networks").
//!
//! SPRINT's QK-PU and V-PU are repurposed as two 8-bit 64-tap
//! dot-product engines for the FFN, with the K/V buffers holding 16 KB
//! of weights reused across tokens. SPRINT's FFN advantage comes from
//! the two-dimensional sequence reduction: padded tokens skip the FFN
//! entirely, cutting its iteration count by the live fraction.

use serde::{Deserialize, Serialize};

use sprint_workloads::ModelConfig;

use crate::counting::{simulate_head, ExecutionMode};
use crate::{HeadProfile, SprintConfig};

/// Transformer-layer dimensions relevant to the FFN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FfnConfig {
    /// Model embedding width (heads × 64 in the studied models).
    pub d_model: usize,
    /// Hidden width (4 × d_model in all studied models).
    pub d_hidden: usize,
}

impl FfnConfig {
    /// Derives the FFN dimensions from a model configuration.
    pub fn for_model(model: &ModelConfig) -> Self {
        let d_model = model.heads * model.head_dim;
        FfnConfig {
            d_model,
            d_hidden: 4 * d_model,
        }
    }

    /// MAC operations of both FFN layers for `tokens` tokens
    /// (in → hidden → out), counted as 2 ops per MAC.
    pub fn ops(&self, tokens: usize) -> f64 {
        2.0 * (tokens as f64) * (self.d_model as f64) * (self.d_hidden as f64) * 2.0
    }
}

/// End-to-end (attention + FFN) comparison for one model/config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EndToEnd {
    /// Attention-only speedup (Fig. 11's metric).
    pub attention_speedup: f64,
    /// Attention-only energy reduction (Fig. 12's metric).
    pub attention_energy_reduction: f64,
    /// End-to-end speedup including FFNs.
    pub speedup: f64,
    /// End-to-end energy reduction including FFNs.
    pub energy_reduction: f64,
    /// Fraction of baseline layer ops spent in attention.
    pub attention_ops_fraction: f64,
}

/// Computes the end-to-end comparison for one model on one config.
///
/// The FFN runs on the same PUs in both systems, so its speedup and
/// energy reduction equal the live-token fraction the 2-D reduction
/// skips; attention numbers come from the counting simulator over the
/// given profile.
pub fn end_to_end(model: &ModelConfig, cfg: &SprintConfig, profile: &HeadProfile) -> EndToEnd {
    let base = simulate_head(profile, cfg, ExecutionMode::Baseline);
    let sprint = simulate_head(profile, cfg, ExecutionMode::Sprint);
    let attention_speedup = sprint.speedup_over(&base);
    let attention_energy_reduction = sprint.energy_reduction_over(&base);

    // Per-layer op split (all heads).
    let d = model.head_dim as f64;
    let s = profile.seq_len as f64;
    let attn_ops = model.heads as f64 * 2.0 * s * s * d * 2.0;
    let ffn = FfnConfig::for_model(model);
    let ffn_base_ops = ffn.ops(profile.seq_len);
    let f_attn = attn_ops / (attn_ops + ffn_base_ops);

    // FFN gain: padded tokens are skipped entirely.
    let live_fraction = profile.live as f64 / profile.seq_len as f64;
    let ffn_speedup = 1.0 / live_fraction;

    let speedup = 1.0 / ((1.0 - f_attn) / ffn_speedup + f_attn / attention_speedup);
    let energy_reduction =
        1.0 / ((1.0 - f_attn) / ffn_speedup + f_attn / attention_energy_reduction);

    EndToEnd {
        attention_speedup,
        attention_energy_reduction,
        speedup,
        energy_reduction,
        attention_ops_fraction: f_attn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ffn_dimensions_follow_model_width() {
        let bert = FfnConfig::for_model(&ModelConfig::bert_base());
        assert_eq!(bert.d_model, 768);
        assert_eq!(bert.d_hidden, 3072);
        let gpt = FfnConfig::for_model(&ModelConfig::gpt2_large());
        assert_eq!(gpt.d_model, 1280);
    }

    #[test]
    fn ffn_ops_scale_linearly_in_tokens() {
        let f = FfnConfig {
            d_model: 768,
            d_hidden: 3072,
        };
        assert!((f.ops(200) / f.ops(100) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bert_end_to_end_lands_in_paper_band() {
        // Paper: BERT-B 2.2x energy / 1.8x speedup end to end.
        let model = ModelConfig::bert_base();
        let profile = HeadProfile::synthetic(
            model.seq_len,
            model.live_tokens(),
            model.keep_rate(),
            model.adjacent_overlap,
            3,
        );
        let e2e = end_to_end(&model, &SprintConfig::medium(), &profile);
        assert!(
            (1.3..3.2).contains(&e2e.speedup),
            "end-to-end speedup {} outside the plausible band",
            e2e.speedup
        );
        assert!(
            (1.3..3.5).contains(&e2e.energy_reduction),
            "end-to-end energy {} outside the plausible band",
            e2e.energy_reduction
        );
        // FFN dominates ops for BERT-class models.
        assert!(e2e.attention_ops_fraction < 0.2);
    }

    #[test]
    fn vit_gains_almost_nothing_end_to_end() {
        // Paper: ViT-B 1.1x / 1.0x — no padded area to skip.
        let model = ModelConfig::vit_base();
        let profile = HeadProfile::synthetic(
            model.seq_len,
            model.live_tokens(),
            model.keep_rate(),
            model.adjacent_overlap,
            4,
        );
        let e2e = end_to_end(&model, &SprintConfig::medium(), &profile);
        assert!(
            e2e.speedup < 1.5,
            "ViT end-to-end speedup {} should be marginal",
            e2e.speedup
        );
        assert!(e2e.speedup >= 1.0);
    }

    #[test]
    fn larger_benchmarks_gain_more_end_to_end() {
        // Paper: "M-SPRINT achieves greater benefit for larger
        // benchmarks, e.g. 7.7x/4.7x for Synth2".
        let bert = ModelConfig::bert_base();
        let synth = ModelConfig::synth2();
        let bp = HeadProfile::synthetic(
            bert.seq_len,
            bert.live_tokens(),
            bert.keep_rate(),
            bert.adjacent_overlap,
            5,
        );
        // Scaled-down Synth-2 with the same statistics (full size is
        // exercised by the report binary).
        let sp = HeadProfile::synthetic(1024, 512, synth.keep_rate(), synth.adjacent_overlap, 6);
        let cfg = SprintConfig::medium();
        let b = end_to_end(&bert, &cfg, &bp);
        let s = end_to_end(&synth, &cfg, &sp);
        assert!(
            s.speedup > b.speedup,
            "synth {} vs bert {}",
            s.speedup,
            b.speedup
        );
    }

    #[test]
    fn attention_fraction_grows_with_sequence_length() {
        let synth = ModelConfig::synth2();
        let short = HeadProfile::synthetic(256, 128, 0.25, 0.84, 7);
        let long = HeadProfile::synthetic(2048, 1024, 0.25, 0.84, 7);
        let cfg = SprintConfig::medium();
        let a = end_to_end(&synth, &cfg, &short);
        let b = end_to_end(&synth, &cfg, &long);
        assert!(b.attention_ops_fraction > a.attention_ops_fraction);
    }
}
