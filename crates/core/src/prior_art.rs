//! Comparison with prior attention accelerators (Table III).
//!
//! A3, SpAtten and LeOPArd rows use each paper's published numbers,
//! exactly as the SPRINT paper does; the M-SPRINT row is measured on
//! this reproduction's counting simulator over the studied workloads.

use serde::{Deserialize, Serialize};

use sprint_energy::dennard_scale;

use crate::counting::{simulate_head, ExecutionMode};
use crate::{HeadProfile, SprintConfig};

/// One accelerator's Table III row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorMetrics {
    /// Design name.
    pub name: String,
    /// Supported sequence lengths, for the table's first row.
    pub seq_range: (usize, usize),
    /// Process node in nm.
    pub process_nm: f64,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Key buffer capacity in KB.
    pub key_buffer_kb: f64,
    /// Value buffer capacity in KB.
    pub value_buffer_kb: f64,
    /// Throughput in GOPs/s.
    pub gops: f64,
    /// Energy efficiency in GOPs/J.
    pub gops_per_joule: f64,
    /// Whether main-memory access cost is included in the numbers.
    pub memory_cost_included: bool,
}

impl AcceleratorMetrics {
    /// Area efficiency, GOPs/s/mm².
    pub fn gops_per_mm2(&self) -> f64 {
        self.gops / self.area_mm2
    }

    /// The combined figure of merit the paper tabulates,
    /// GOPs/s/J/mm².
    pub fn gops_per_joule_per_mm2(&self) -> f64 {
        self.gops_per_joule / self.area_mm2
    }

    /// This row's energy efficiency Dennard-scaled to `node_nm`.
    pub fn gops_per_joule_at(&self, node_nm: f64) -> f64 {
        dennard_scale(self.gops_per_joule, self.process_nm, node_nm)
    }
}

/// The published prior-art rows of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriorArt {
    /// A3 (HPCA 2020): sort-based approximate attention.
    A3,
    /// SpAtten (HPCA 2021): cascaded token/head pruning.
    SpAtten,
    /// LeOPArd (ISCA 2022): gradient-learned runtime pruning.
    Leopard,
}

impl PriorArt {
    /// The published metrics row.
    pub fn metrics(self) -> AcceleratorMetrics {
        match self {
            PriorArt::A3 => AcceleratorMetrics {
                name: "A3".to_string(),
                seq_range: (50, 384),
                process_nm: 40.0,
                area_mm2: 2.1,
                key_buffer_kb: 20.0,
                value_buffer_kb: 20.0,
                gops: 518.0,
                gops_per_joule: 4709.1,
                memory_cost_included: false,
            },
            PriorArt::SpAtten => AcceleratorMetrics {
                name: "SpAtten".to_string(),
                seq_range: (384, 1024),
                process_nm: 40.0,
                area_mm2: 1.6,
                key_buffer_kb: 24.0,
                value_buffer_kb: 24.0,
                gops: 360.0,
                gops_per_joule: 382.0,
                memory_cost_included: true,
            },
            PriorArt::Leopard => AcceleratorMetrics {
                name: "LeOPArd".to_string(),
                seq_range: (50, 1024),
                process_nm: 65.0,
                area_mm2: 3.5,
                key_buffer_kb: 48.0,
                value_buffer_kb: 64.0,
                gops: 574.1,
                gops_per_joule: 519.3,
                memory_cost_included: false,
            },
        }
    }

    /// All three prior designs in table order.
    pub fn all() -> Vec<AcceleratorMetrics> {
        vec![
            PriorArt::A3.metrics(),
            PriorArt::SpAtten.metrics(),
            PriorArt::Leopard.metrics(),
        ]
    }
}

/// Measures the M-SPRINT row on the counting simulator.
///
/// Effective throughput follows the accelerator-paper convention: the
/// dense-equivalent attention operations of the live region (2 ops per
/// 8-bit MAC for `Q×Kᵀ` and `×V`) delivered per unit time, with the
/// pruned work counted as delivered — pruning *is* the speedup
/// mechanism. Energy includes the full main-memory access cost
/// (Table III's "Mem. Cost Included ✓").
pub fn sprint_metrics(cfg: &SprintConfig, profiles: &[HeadProfile]) -> AcceleratorMetrics {
    let mut total_ops = 0.0f64;
    let mut total_cycles = 0.0f64;
    let mut total_energy_j = 0.0f64;
    let mut seq_min = usize::MAX;
    let mut seq_max = 0usize;
    for p in profiles {
        let perf = simulate_head(p, cfg, ExecutionMode::Sprint);
        let s = p.seq_len as f64;
        let d = p.head_dim as f64;
        // Dense-equivalent ops of the *nominal* job (QK + AV matmuls
        // over the full padded sequence): the work a dense baseline
        // must perform, which SPRINT delivers through pruning and the
        // 2-D reduction. This matches the accelerator convention of
        // crediting skipped-but-covered work as throughput.
        total_ops += 2.0 * (s * s * d) * 2.0;
        total_cycles += perf.cycles as f64;
        total_energy_j += perf.energy.total().as_joules();
        seq_min = seq_min.min(p.seq_len);
        seq_max = seq_max.max(p.seq_len);
    }
    let seconds = total_cycles / sprint_energy::DEFAULT_CLOCK_HZ;
    let area = cfg.area().total_mm2();
    AcceleratorMetrics {
        name: cfg.name.to_string(),
        seq_range: (seq_min.min(seq_max), seq_max),
        process_nm: 65.0,
        area_mm2: area,
        key_buffer_kb: cfg.onchip_kib as f64 / 2.0,
        value_buffer_kb: cfg.onchip_kib as f64 / 2.0,
        gops: total_ops / seconds / 1e9,
        gops_per_joule: total_ops / total_energy_j / 1e9,
        memory_cost_included: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_rows_match_table_three() {
        let a3 = PriorArt::A3.metrics();
        assert_eq!(a3.gops, 518.0);
        assert!((a3.gops_per_mm2() - 246.7).abs() < 3.0, "paper: 249");
        let spatten = PriorArt::SpAtten.metrics();
        assert!((spatten.gops_per_mm2() - 225.0).abs() < 15.0, "paper: 238");
        let leopard = PriorArt::Leopard.metrics();
        assert!((leopard.gops_per_mm2() - 164.0).abs() < 3.0, "paper: 165.5");
        assert!(
            (leopard.gops_per_joule_per_mm2() - 148.4).abs() < 35.0,
            "paper: 119.7"
        );
    }

    #[test]
    fn only_spatten_and_sprint_include_memory_cost() {
        assert!(!PriorArt::A3.metrics().memory_cost_included);
        assert!(PriorArt::SpAtten.metrics().memory_cost_included);
        assert!(!PriorArt::Leopard.metrics().memory_cost_included);
    }

    #[test]
    fn m_sprint_wins_throughput_and_area_efficiency() {
        // Table III's headline: M-SPRINT yields the best GOPs/s and
        // GOPs/s/mm² even including main-memory cost.
        let profiles = vec![
            HeadProfile::synthetic(384, 207, 0.254, 0.85, 1),
            HeadProfile::synthetic(197, 197, 0.356, 0.74, 2),
            HeadProfile::synthetic(512, 512, 0.261, 0.82, 3),
        ];
        let m = sprint_metrics(&SprintConfig::medium(), &profiles);
        for prior in PriorArt::all() {
            assert!(
                m.gops > prior.gops,
                "{}: {} vs M-SPRINT {}",
                prior.name,
                prior.gops,
                m.gops
            );
            assert!(
                m.gops_per_mm2() > prior.gops_per_mm2(),
                "{}: area efficiency",
                prior.name
            );
        }
        // And the known loss: A3's GOPs/J (no DRAM cost, 40 nm) beats
        // M-SPRINT's.
        assert!(PriorArt::A3.metrics().gops_per_joule > m.gops_per_joule);
        // But Dennard-scaling M-SPRINT to A3's effective node closes
        // most of the gap (paper: 3873.5, 1.2x below A3).
        let scaled = dennard_scale(m.gops_per_joule, 65.0, 31.4);
        assert!(scaled > 0.4 * PriorArt::A3.metrics().gops_per_joule);
    }

    #[test]
    fn m_sprint_beats_leopard_and_spatten_on_energy() {
        let profiles = vec![HeadProfile::synthetic(384, 207, 0.254, 0.85, 4)];
        let m = sprint_metrics(&SprintConfig::medium(), &profiles);
        assert!(m.gops_per_joule > PriorArt::Leopard.metrics().gops_per_joule);
        assert!(m.gops_per_joule > PriorArt::SpAtten.metrics().gops_per_joule);
    }

    #[test]
    fn sprint_row_reports_configuration_facts() {
        let profiles = vec![HeadProfile::synthetic(128, 128, 0.3, 0.8, 5)];
        let m = sprint_metrics(&SprintConfig::medium(), &profiles);
        assert_eq!(m.key_buffer_kb, 16.0, "Table III: 16 KB key buffer");
        assert_eq!(m.value_buffer_kb, 16.0);
        assert!((m.area_mm2 - 1.9).abs() < 0.1);
        assert!(m.memory_cost_included);
    }
}
