//! The four accuracy scenarios of Fig. 9, plus the bit-sensitivity
//! sweep of Fig. 5.

use serde::{Deserialize, Serialize};

use sprint_engine::{Engine, ExecutionMode, FaultPolicy, ModelProfile, ModelRequest, ModelServer};
use sprint_reram::{FaultModel, NoiseModel, ThresholdSpec};
use sprint_workloads::{ModelConfig, TaskScore};

use crate::{SprintConfig, SystemError};

/// The four bars of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccuracyScenario {
    /// Software-only dense attention.
    Baseline,
    /// Learned runtime pruning in full precision (LeOPArd).
    RuntimePruning,
    /// SPRINT's in-memory thresholding, approximate scores used
    /// directly (no on-chip recompute).
    SprintNoRecompute,
    /// Full SPRINT: in-memory thresholding + on-chip recompute.
    Sprint,
}

impl AccuracyScenario {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AccuracyScenario::Baseline => "Baseline",
            AccuracyScenario::RuntimePruning => "Runtime Pruning",
            AccuracyScenario::SprintNoRecompute => "SPRINT w/o Recompute",
            AccuracyScenario::Sprint => "SPRINT",
        }
    }
}

/// Task scores of the four scenarios on one model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioScores {
    /// Software-only baseline.
    pub baseline: TaskScore,
    /// Runtime pruning (full-precision thresholding).
    pub runtime_pruning: TaskScore,
    /// SPRINT without on-chip recompute.
    pub sprint_no_recompute: TaskScore,
    /// Full SPRINT.
    pub sprint: TaskScore,
}

/// Evaluates the four Fig. 9 scenarios for one model on its proxy task.
///
/// `seq_len` overrides the model's default sequence length (accuracy
/// studies run at reduced lengths for test speed; the report binary
/// uses larger ones). The analog noise model is the paper's 5-bit
/// equivalent.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn evaluate_scenarios(
    model: &ModelConfig,
    seq_len: Option<usize>,
    seed: u64,
) -> Result<ScenarioScores, SystemError> {
    // One model server serves all four scenarios as one batch:
    // `Dense` is the software baseline, `Oracle` the full-precision
    // runtime pruning, and the two SPRINT variants run the analog
    // in-memory thresholding at the paper's 5-bit-equivalent noise.
    // The shared base seed pins one trace and one proxy task across
    // the four passes (the server deduplicates their synthesis), so
    // the scenario scores stay directly comparable.
    let server = ModelServer::new(accuracy_engine(NoiseModel::default(), seed ^ 0xacc)?);
    let profile = accuracy_profile(model, seq_len);
    let requests: Vec<ModelRequest> = ExecutionMode::ALL
        .iter()
        .map(|&mode| {
            ModelRequest::new(profile.clone())
                .with_seed(seed)
                .with_mode(mode)
                .with_accuracy(true)
        })
        .collect();
    let responses = server.serve_many(&requests).map_err(SystemError::from)?;
    let score =
        |i: usize| -> TaskScore { responses[i].total.accuracy().expect("accuracy requested") };

    // ExecutionMode::ALL is Fig. 9 bar order: Dense, Oracle,
    // NoRecompute, Sprint.
    Ok(ScenarioScores {
        baseline: score(0),
        runtime_pruning: score(1),
        sprint_no_recompute: score(2),
        sprint: score(3),
    })
}

/// Evaluates the four Fig. 9 scenarios under an injected ReRAM cell
/// fault rate, returning the scores plus the number of faulty cells
/// the scrub detected on the Sprint pass.
///
/// The engine runs the [`FaultPolicy::Monitor`] policy — faults are
/// detected and counted but left in place — so the sweep isolates the
/// *accuracy* consequence of stuck analog scores: the digital modes
/// (`Dense`/`Oracle`) never touch the crossbars and stay flat, Sprint's
/// on-chip recompute bounds the loss to wrongly pruned keys, and the
/// no-recompute variant feeds the corrupted scores straight to the
/// softmax. A zero rate attaches no fault model at all, making row one
/// bit-identical to the fault-free pipeline.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn fault_scenarios(
    model: &ModelConfig,
    seq_len: Option<usize>,
    seed: u64,
    fault_rate: f64,
) -> Result<(ScenarioScores, u64), SystemError> {
    let mut builder = Engine::builder(SprintConfig::medium())
        .noise(NoiseModel::default())
        .seed(seed ^ 0xacc)
        .worker_slots(1)
        .memory_accounting(false)
        .fault_policy(FaultPolicy::Monitor);
    if fault_rate > 0.0 {
        let fault_model = FaultModel::uniform(fault_rate, seed ^ 0xfa11)
            .map_err(sprint_engine::SprintError::from)?;
        builder = builder.fault_model(fault_model);
    }
    let server = ModelServer::new(builder.build().map_err(SystemError::from)?);
    let profile = accuracy_profile(model, seq_len);
    let requests: Vec<ModelRequest> = ExecutionMode::ALL
        .iter()
        .map(|&mode| {
            ModelRequest::new(profile.clone())
                .with_seed(seed)
                .with_mode(mode)
                .with_accuracy(true)
        })
        .collect();
    let responses = server.serve_many(&requests).map_err(SystemError::from)?;
    let score =
        |i: usize| -> TaskScore { responses[i].total.accuracy().expect("accuracy requested") };
    let faults = responses
        .iter()
        .map(|r| r.total.faults_detected)
        .max()
        .unwrap_or(0);
    Ok((
        ScenarioScores {
            baseline: score(0),
            runtime_pruning: score(1),
            sprint_no_recompute: score(2),
            sprint: score(3),
        },
        faults,
    ))
}

/// The single-head accuracy profile of one model: the statistics of
/// the studied workload, one layer × one head (the accuracy proxy is a
/// per-head instrument; model-size grids just average more draws of
/// the same mechanism at much higher cost).
fn accuracy_profile(model: &ModelConfig, seq_len: Option<usize>) -> ModelProfile {
    let mut profile = ModelProfile::from_model(model).with_layers(1).with_heads(1);
    if let Some(s) = seq_len {
        profile = profile.with_seq_len(s);
    }
    profile
}

/// The engine the accuracy sweeps share: M-SPRINT, one worker, memory
/// accounting off (only the attention outputs feed the proxy task, so
/// the per-query DRAM timing simulation would be pure overhead).
fn accuracy_engine(noise: NoiseModel, seed: u64) -> Result<Engine, SystemError> {
    Engine::builder(SprintConfig::medium())
        .noise(noise)
        .seed(seed)
        .worker_slots(1)
        .memory_accounting(false)
        .build()
        .map_err(SystemError::from)
}

/// The Fig. 5 sweep: task accuracy as a function of the number of bits
/// used for the in-memory score comparison (Eq. 3), with full-precision
/// on-chip recompute of the survivors.
///
/// Returns `(bits, accuracy)` pairs for `bits = 1..=max_bits`.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn bit_sensitivity(
    model: &ModelConfig,
    seq_len: Option<usize>,
    max_bits: u32,
    seed: u64,
) -> Result<Vec<(u32, f64)>, SystemError> {
    // One server sweeps every bit width as one batch: the crossbars
    // are reprogrammed in place per width, and the shared base seed
    // pins the same trace and proxy task across the whole sweep (the
    // server builds both once).
    let server = ModelServer::new(accuracy_engine(NoiseModel::ideal(), seed ^ 0xb17)?);
    let profile = accuracy_profile(model, seq_len);
    let requests: Vec<ModelRequest> = (1..=max_bits)
        .map(|bits| {
            ModelRequest::new(profile.clone())
                .with_seed(seed)
                .with_mode(ExecutionMode::Sprint)
                .with_threshold_spec(ThresholdSpec::quantized(bits))
                .with_accuracy(true)
        })
        .collect();
    let responses = server.serve_many(&requests).map_err(SystemError::from)?;
    Ok(responses
        .iter()
        .zip(1..=max_bits)
        .map(|(response, bits)| {
            let score = response.total.accuracy().expect("accuracy requested");
            (bits, score.accuracy)
        })
        .collect())
}

/// Mean unweighted accuracy degradation of SPRINT vs baseline over a
/// set of scores (the paper's headline 0.36 % number).
pub fn mean_degradation(scores: &[(String, ScenarioScores)]) -> f64 {
    let classification: Vec<&ScenarioScores> = scores
        .iter()
        .filter(|(name, _)| name != "GPT-2-L")
        .map(|(_, s)| s)
        .collect();
    if classification.is_empty() {
        return 0.0;
    }
    classification
        .iter()
        .map(|s| (s.baseline.accuracy - s.sprint.accuracy).max(0.0))
        .sum::<f64>()
        / classification.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_labels_match_fig9_bars() {
        assert_eq!(AccuracyScenario::Baseline.label(), "Baseline");
        assert_eq!(
            AccuracyScenario::SprintNoRecompute.label(),
            "SPRINT w/o Recompute"
        );
    }

    #[test]
    fn sprint_recovers_most_of_the_no_recompute_loss() {
        // The central claim of Fig. 9: recompute closes the gap —
        // SPRINT lands at the runtime-pruning level (paper: 0.22%
        // apart) while the no-recompute variant falls well below.
        // Proxy-task degradations are magnified relative to the
        // paper's fine-tuned models (see EXPERIMENTS.md), so the
        // assertions target the orderings and the SPRINT-vs-pruning
        // parity rather than sub-percent absolute gaps.
        let model = ModelConfig::bert_base();
        let s = evaluate_scenarios(&model, Some(96), 3).unwrap();
        assert!(
            s.sprint.accuracy + 1e-9 >= s.sprint_no_recompute.accuracy,
            "recompute ({}) must not score below no-recompute ({})",
            s.sprint.accuracy,
            s.sprint_no_recompute.accuracy
        );
        let parity = (s.sprint.accuracy - s.runtime_pruning.accuracy).abs();
        assert!(
            parity < 0.08,
            "SPRINT ({}) should match runtime pruning ({})",
            s.sprint.accuracy,
            s.runtime_pruning.accuracy
        );
        let sprint_gap = (s.baseline.accuracy - s.sprint.accuracy).abs();
        assert!(sprint_gap < 0.2, "proxy gap {sprint_gap} out of band");
    }

    #[test]
    fn runtime_pruning_stays_close_to_baseline() {
        let model = ModelConfig::vit_base();
        let s = evaluate_scenarios(&model, Some(96), 5).unwrap();
        let gap = (s.baseline.accuracy - s.runtime_pruning.accuracy).abs();
        assert!(gap < 0.08, "runtime pruning gap {gap}");
    }

    #[test]
    fn perplexity_stays_near_baseline_for_gpt2() {
        // Fig. 9: SPRINT's perplexity stays within ~0.1 of the 17.55
        // baseline. (The no-recompute blow-up of the paper needs the
        // real LM objective; our pinned pseudo-perplexity only shows
        // small, seed-dependent shifts there — see EXPERIMENTS.md.)
        let model = ModelConfig::gpt2_large();
        let s = evaluate_scenarios(&model, Some(96), 7).unwrap();
        assert!(
            (s.sprint.perplexity - s.baseline.perplexity).abs() < 0.5,
            "SPRINT perplexity {} strays from baseline {}",
            s.sprint.perplexity,
            s.baseline.perplexity
        );
        assert!(
            (s.runtime_pruning.perplexity - s.baseline.perplexity).abs() < 0.5,
            "runtime pruning perplexity {} strays from baseline {}",
            s.runtime_pruning.perplexity,
            s.baseline.perplexity
        );
    }

    #[test]
    fn bit_sweep_shows_fig5_shape() {
        let model = ModelConfig::bert_base();
        let sweep = bit_sensitivity(&model, Some(96), 8, 11).unwrap();
        assert_eq!(sweep.len(), 8);
        let acc = |b: u32| sweep[(b - 1) as usize].1;
        // One bit collapses; four bits is near the plateau.
        assert!(acc(1) < acc(4), "1-bit {} vs 4-bit {}", acc(1), acc(4));
        let plateau = (acc(6) + acc(7) + acc(8)) / 3.0;
        assert!(
            (acc(4) - plateau).abs() < 0.08,
            "4-bit {} should be near plateau {plateau}",
            acc(4)
        );
    }

    #[test]
    fn mean_degradation_ignores_generative_models() {
        let mk = |acc_base: f64, acc_sprint: f64| ScenarioScores {
            baseline: TaskScore {
                accuracy: acc_base,
                perplexity: 1.0,
                agreement: 1.0,
            },
            runtime_pruning: TaskScore {
                accuracy: acc_base,
                perplexity: 1.0,
                agreement: 1.0,
            },
            sprint_no_recompute: TaskScore {
                accuracy: acc_sprint - 0.04,
                perplexity: 1.0,
                agreement: 0.9,
            },
            sprint: TaskScore {
                accuracy: acc_sprint,
                perplexity: 1.0,
                agreement: 0.99,
            },
        };
        let scores = vec![
            ("BERT-B".to_string(), mk(0.80, 0.796)),
            ("GPT-2-L".to_string(), mk(0.0, 0.0)),
        ];
        let deg = mean_degradation(&scores);
        assert!((deg - 0.004).abs() < 1e-9, "deg {deg}");
    }
}
