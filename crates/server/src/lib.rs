//! `sprint-server` — a long-lived HTTP serving front end over the
//! SPRINT engine.
//!
//! The lower crates answer *"how fast is one pass?"*; this crate
//! answers *"what happens when real traffic meets the substrate?"*.
//! It binds a plain [`std::net::TcpListener`] (HTTP/1.1 via the
//! vendored [`minihttp`] — the workspace builds offline, so no
//! framework), and exposes:
//!
//! | Endpoint          | Purpose                                      |
//! |-------------------|----------------------------------------------|
//! | `GET /health`     | liveness + drain state                       |
//! | `GET /metrics`    | Prometheus-style text exposition             |
//! | `POST /v1/serve`  | one forward pass, batched behind admission   |
//! | `POST /v1/decode` | autoregressive sessions: open / step / close |
//!
//! Serve traffic flows through bounded per-tenant queues
//! ([`queue::AdmissionQueue`]): over capacity the server sheds load
//! with `429 Too Many Requests` + `Retry-After` instead of queueing
//! unboundedly, and a deterministic batching window coalesces
//! admitted requests into [`sprint_engine::ModelServer`] batches.
//! Responses are **bit-identical** to direct in-process calls — the
//! protocol is reference-based (model name + seed, traces
//! re-synthesized server-side), and floats render shortest-round-trip
//! (see [`json`]).
//!
//! # Example
//!
//! ```
//! use sprint_engine::{Engine, SprintConfig};
//! use sprint_server::{Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = Engine::builder(SprintConfig::small()).build()?;
//! let server = Server::start(engine, ServerConfig::default())?;
//! let mut client = minihttp::Client::connect(server.local_addr().to_string());
//! let health = client.get("/health")?;
//! assert_eq!(health.status, 200);
//! let response = client.post_json(
//!     "/v1/serve",
//!     r#"{"model":"synth1","layers":1,"heads":1,"seq_len":16,"seed":3}"#,
//! )?;
//! assert_eq!(response.status, 200);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use json::Json;
pub use metrics::Metrics;
pub use protocol::ServeRequest;
pub use queue::{AdmissionQueue, Rejection};
pub use server::{Server, ServerConfig};
