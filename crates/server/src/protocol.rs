//! The wire protocol: JSON request/response shapes and their mapping
//! onto `sprint-engine` types.
//!
//! The protocol is deliberately *reference-based*: clients name a
//! model catalog entry and a seed instead of shipping query/key/value
//! matrices over the wire. The server synthesizes the same
//! deterministic traces the offline harnesses use
//! ([`sprint_workloads::TraceGenerator`]), so an HTTP response is
//! bit-identical to the equivalent in-process
//! [`sprint_engine::ModelServer::serve`] call — the integration tests
//! assert exactly that.

use crate::json::Json;
use sprint_engine::{ExecutionMode, ModelProfile, ModelRequest, ModelResponse, PerfRollup};
use sprint_workloads::ModelConfig;

/// Looks up a catalog model by its request name (the lowercase,
/// hyphen-free spelling used on the wire).
pub fn model_by_name(name: &str) -> Option<ModelConfig> {
    match name {
        "bert_base" => Some(ModelConfig::bert_base()),
        "bert_large" => Some(ModelConfig::bert_large()),
        "albert_xl" => Some(ModelConfig::albert_xl()),
        "albert_xxl" => Some(ModelConfig::albert_xxl()),
        "vit_base" => Some(ModelConfig::vit_base()),
        "gpt2_large" => Some(ModelConfig::gpt2_large()),
        "synth1" => Some(ModelConfig::synth1()),
        "synth2" => Some(ModelConfig::synth2()),
        _ => None,
    }
}

/// Wire names accepted by [`model_by_name`], for error messages.
pub const MODEL_NAMES: [&str; 8] = [
    "bert_base",
    "bert_large",
    "albert_xl",
    "albert_xxl",
    "vit_base",
    "gpt2_large",
    "synth1",
    "synth2",
];

fn mode_by_name(name: &str) -> Option<ExecutionMode> {
    match name {
        "sprint" => Some(ExecutionMode::Sprint),
        "no_recompute" => Some(ExecutionMode::NoRecompute),
        "dense" => Some(ExecutionMode::Dense),
        "oracle" => Some(ExecutionMode::Oracle),
        _ => None,
    }
}

fn mode_name(mode: ExecutionMode) -> &'static str {
    match mode {
        ExecutionMode::Sprint => "sprint",
        ExecutionMode::NoRecompute => "no_recompute",
        ExecutionMode::Dense => "dense",
        ExecutionMode::Oracle => "oracle",
    }
}

/// A parsed `POST /v1/serve` body.
///
/// ```json
/// {"model": "vit_base", "layers": 1, "heads": 2, "seq_len": 32,
///  "seed": 7, "mode": "sprint"}
/// ```
///
/// Only `model` is required; `layers`/`heads`/`seq_len` override the
/// catalog shape (the knob small hosts use to keep service times
/// bounded), `seed` defaults to 0, `mode` to the engine default.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The catalog model name.
    pub model: String,
    /// Layer-count override.
    pub layers: Option<usize>,
    /// Heads-per-layer override.
    pub heads: Option<usize>,
    /// Sequence-length override.
    pub seq_len: Option<usize>,
    /// Base seed for deterministic trace synthesis.
    pub seed: u64,
    /// Execution-mode override.
    pub mode: Option<ExecutionMode>,
}

impl ServeRequest {
    /// Parses the JSON body of a serve call.
    ///
    /// # Errors
    ///
    /// A client-facing message naming the offending field.
    pub fn parse(body: &Json) -> Result<ServeRequest, String> {
        let model = body
            .str_field("model")
            .ok_or_else(|| format!("missing 'model' (one of {})", MODEL_NAMES.join(", ")))?
            .to_string();
        if model_by_name(&model).is_none() {
            return Err(format!(
                "unknown model '{model}' (one of {})",
                MODEL_NAMES.join(", ")
            ));
        }
        let dim = |key: &str| -> Result<Option<usize>, String> {
            match body.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(|n| Some(n as usize))
                    .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
            }
        };
        let mode = match body.get("mode") {
            None => None,
            Some(v) => {
                let name = v.as_str().ok_or("'mode' must be a string")?;
                Some(mode_by_name(name).ok_or_else(|| {
                    format!("unknown mode '{name}' (sprint, no_recompute, dense, oracle)")
                })?)
            }
        };
        Ok(ServeRequest {
            model,
            layers: dim("layers")?,
            heads: dim("heads")?,
            seq_len: dim("seq_len")?,
            seed: match body.get("seed") {
                None => 0,
                Some(v) => v.as_u64().ok_or("'seed' must be a non-negative integer")?,
            },
            mode,
        })
    }

    /// Builds the engine-side request this wire request names.
    pub fn to_model_request(&self) -> ModelRequest {
        let config = model_by_name(&self.model).expect("validated at parse time");
        let mut profile = ModelProfile::from_model(&config);
        if let Some(layers) = self.layers {
            profile = profile.with_layers(layers);
        }
        if let Some(heads) = self.heads {
            profile = profile.with_heads(heads);
        }
        if let Some(seq_len) = self.seq_len {
            profile = profile.with_seq_len(seq_len);
        }
        let mut request = ModelRequest::new(profile).with_seed(self.seed);
        if let Some(mode) = self.mode {
            request = request.with_mode(mode);
        }
        request
    }
}

/// Renders a [`PerfRollup`] as the protocol's rollup object. Counters
/// are exact integers; energy renders shortest-round-trip (equal
/// strings ⇔ bit-identical floats).
pub fn rollup_json(rollup: &PerfRollup) -> Json {
    Json::obj([
        ("heads", Json::Int(rollup.heads as i128)),
        ("cycles", Json::Int(rollup.cycles as i128)),
        ("energy_pj", Json::Num(rollup.energy.total().as_pj())),
        ("fetched_vectors", Json::Int(rollup.fetched_vectors as i128)),
        ("reused_vectors", Json::Int(rollup.reused_vectors as i128)),
        ("bytes_fetched", Json::Int(rollup.bytes_fetched as i128)),
        ("queries_pruned", Json::Int(rollup.queries_pruned as i128)),
        ("kept_scores", Json::Int(rollup.kept_scores as i128)),
        ("live_pairs", Json::Int(rollup.live_pairs as i128)),
        ("faults_detected", Json::Int(rollup.faults_detected as i128)),
        ("fault_retries", Json::Int(rollup.fault_retries as i128)),
        (
            "remapped_columns",
            Json::Int(rollup.remapped_columns as i128),
        ),
        ("heads_demoted", Json::Int(rollup.heads_demoted as i128)),
    ])
}

/// Renders a [`ModelResponse`] as the protocol's serve-response body.
pub fn response_json(response: &ModelResponse) -> Json {
    Json::obj([
        ("model", Json::Str(response.model.clone())),
        ("mode", Json::Str(mode_name(response.mode).to_string())),
        ("layers", Json::Int(response.layers.len() as i128)),
        ("total", rollup_json(&response.total)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_request_parses_and_builds() {
        let body = Json::parse(
            r#"{"model":"vit_base","layers":1,"heads":2,"seq_len":32,"seed":7,"mode":"dense"}"#,
        )
        .unwrap();
        let req = ServeRequest::parse(&body).unwrap();
        assert_eq!(req.model, "vit_base");
        assert_eq!(req.seed, 7);
        let model_request = req.to_model_request();
        assert_eq!(model_request.profile().layers(), 1);
        assert_eq!(model_request.profile().heads(), 2);
        assert_eq!(model_request.base_seed(), 7);
        assert_eq!(model_request.mode_override(), Some(ExecutionMode::Dense));
    }

    #[test]
    fn serve_request_rejects_bad_fields() {
        for (body, needle) in [
            (r#"{}"#, "missing 'model'"),
            (r#"{"model":"nope"}"#, "unknown model"),
            (r#"{"model":"synth1","seed":-1}"#, "'seed'"),
            (r#"{"model":"synth1","layers":"x"}"#, "'layers'"),
            (r#"{"model":"synth1","mode":"warp"}"#, "unknown mode"),
        ] {
            let err = ServeRequest::parse(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn every_catalog_name_resolves() {
        for name in MODEL_NAMES {
            assert!(model_by_name(name).is_some(), "{name}");
        }
        assert!(model_by_name("resnet").is_none());
    }
}
