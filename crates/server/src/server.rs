//! The long-lived HTTP serving front end.
//!
//! ```text
//!             ┌────────────┐   TcpStream    ┌──────────────────┐
//!  clients ──▶│  listener  │──sync_channel─▶│ handler pool (N) │
//!             └────────────┘  (503 if full) └──────┬───────────┘
//!                                    parse + admit │  reply rx
//!                                                  ▼
//!                              ┌──────────────────────────────┐
//!                              │ AdmissionQueue (per tenant,  │
//!                              │ bounded → 429 + Retry-After) │
//!                              └──────────────┬───────────────┘
//!                                 batch window│ round-robin drain
//!                                             ▼
//!                              ┌──────────────────────────────┐
//!                              │ batcher → serve_many_threads │
//!                              └──────────────────────────────┘
//! ```
//!
//! Three thread roles share one `Shared` block:
//!
//! * the **listener** accepts sockets and feeds a bounded handoff
//!   channel (an overflowing accept path answers `503` inline rather
//!   than queueing connections invisibly);
//! * **handlers** speak HTTP/1.1 keep-alive, parse and route
//!   requests, and — for `/v1/serve` — park on a per-request reply
//!   channel after admission;
//! * the **batcher** wakes every batching window, drains up to
//!   `max_batch` admitted requests fairly across tenants, and runs
//!   them as one [`ModelServer::serve_many_threads`] call, so
//!   coalescing under load is deterministic in shape.
//!
//! Shutdown is graceful by construction: the queue closes first (new
//! work is refused with `503` + `Retry-After`), the batcher drains
//! everything already admitted, and only then do the listener and
//! handler pool wind down — an admitted request always gets its
//! response.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::protocol::{self, ServeRequest};
use crate::queue::{AdmissionQueue, Rejection};
use minihttp::{read_request, Request, Response};
use sprint_engine::{
    DecodeSession, DecodeStep, Engine, EvictedSession, ModelRequest, ModelResponse, ModelServer,
    SessionRequest, SprintError,
};
use sprint_workloads::{HeadTrace, TraceGenerator};

/// How the server is built: socket, pool sizes, batching, and
/// admission capacities.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Connection-handler threads.
    pub http_threads: usize,
    /// Sockets the listener may park while every handler is busy
    /// (beyond this, connections get an inline `503`).
    pub accept_backlog: usize,
    /// The batching window: how long the batcher sleeps between
    /// queue drains. Longer windows coalesce more per engine batch.
    pub batch_window: Duration,
    /// Most serve requests per engine batch.
    pub max_batch: usize,
    /// Per-tenant admission-queue capacity.
    pub queue_per_tenant: usize,
    /// Global admission capacity across tenants.
    pub queue_global: usize,
    /// Worker-thread cap handed to the engine per batch.
    pub engine_workers: usize,
    /// Most decode sessions allowed to hold KV pages at once; the
    /// least-recently-used session beyond this is evicted (its pages
    /// return to the engine's shared pool, its next step rehydrates it
    /// transparently). `None` leaves residency to pool pressure alone.
    pub max_resident_sessions: Option<usize>,
    /// Test hook: an artificial service delay inserted before each
    /// engine batch. Lets the overload and drain tests hold requests
    /// in flight deterministically. `None` in production.
    pub service_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            http_threads: 4,
            accept_backlog: 64,
            batch_window: Duration::from_millis(2),
            max_batch: 16,
            queue_per_tenant: 32,
            queue_global: 128,
            engine_workers: sprint_parallel::max_threads(),
            max_resident_sessions: None,
            service_delay: None,
        }
    }
}

/// One admitted serve request parked in the queue.
struct QueuedServe {
    request: ModelRequest,
    admitted_at: Instant,
    reply: mpsc::Sender<Result<ModelResponse, SprintError>>,
}

/// Where a decode session's substrate currently lives.
enum SessionSlot {
    /// KV pages resident in the shared pool; steps serve directly.
    Resident(Box<DecodeSession>),
    /// Pages dropped back to the pool; the next step rehydrates the
    /// session from its retained trace before serving.
    Evicted(Box<EvictedSession>),
    /// Transitional placeholder while a session moves between states
    /// (never observed across a lock release).
    Vacant,
}

/// One open decode session: the synthesized token stream plus the
/// engine session consuming it (resident or evicted).
struct SessionState {
    slot: SessionSlot,
    trace: HeadTrace,
    next_token: usize,
    seq_len: usize,
    /// Monotone recency stamp ([`Shared::lru_tick`]) — the coldest
    /// resident session is the eviction victim under pool pressure.
    last_used: u64,
}

struct Shared {
    server: ModelServer,
    config: ServerConfig,
    metrics: Metrics,
    queue: Mutex<AdmissionQueue<QueuedServe>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionState>>>>,
    next_session: AtomicU64,
    /// Recency clock for session LRU eviction.
    lru_tick: AtomicU64,
    /// Sessions currently holding KV pages (maintained at every
    /// open/rehydrate/evict/close transition).
    resident_sessions: AtomicU64,
}

/// A running server: the listener, handler pool and batcher threads,
/// plus the shared state they communicate through.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    listener: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("handlers", &self.handlers.len())
            .finish()
    }
}

impl Server {
    /// Binds, spawns the thread roles, and returns the running server.
    ///
    /// # Errors
    ///
    /// Socket errors from binding `config.addr`.
    pub fn start(engine: Engine, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            server: ModelServer::new(engine),
            queue: Mutex::new(AdmissionQueue::new(
                config.queue_per_tenant,
                config.queue_global,
            )),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Metrics::new(),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            lru_tick: AtomicU64::new(0),
            resident_sessions: AtomicU64::new(0),
            config,
        });

        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(shared.config.accept_backlog);
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut handlers = Vec::new();
        for _ in 0..shared.config.http_threads.max(1) {
            let rx = Arc::clone(&conn_rx);
            let shared = Arc::clone(&shared);
            handlers.push(std::thread::spawn(move || loop {
                let stream = {
                    let rx = rx.lock().expect("conn channel poisoned");
                    rx.recv()
                };
                match stream {
                    Ok(stream) => handle_connection(&shared, stream),
                    Err(_) => return, // listener gone and channel drained
                }
            }));
        }

        let listener_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || listen_loop(&shared, &listener, &conn_tx))
        };

        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batch_loop(&shared))
        };

        Ok(Server {
            shared,
            local_addr,
            listener: Some(listener_thread),
            batcher: Some(batcher),
            handlers,
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The server's metrics block (live counters).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Gracefully shuts down: refuse new work, drain everything
    /// already admitted, then stop the threads.
    pub fn shutdown(mut self) {
        // 1. Close admission — queued and in-flight work still drains.
        self.shared.queue.lock().expect("queue poisoned").close();
        self.shared.queue_cv.notify_all();
        // 2. The batcher exits once the closed queue is empty; joining
        //    it proves every admitted request got a response.
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        // 3. Now stop accepting sockets and wind down the handlers
        //    (their idle keep-alive loops poll this flag).
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join(); // dropping the thread drops conn_tx
        }
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
    }
}

fn listen_loop(shared: &Shared, listener: &TcpListener, conn_tx: &mpsc::SyncSender<TcpStream>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if let Err(back) = conn_tx.try_send(stream) {
                    // Every handler busy and the backlog full: shed the
                    // connection visibly instead of letting it starve.
                    shared.metrics.unavailable.fetch_add(1, Ordering::Relaxed);
                    let mut stream = match back {
                        mpsc::TrySendError::Full(s) | mpsc::TrySendError::Disconnected(s) => s,
                    };
                    let _ = Response::json(503, r#"{"error":"handler pool saturated"}"#)
                        .with_header("Retry-After", "1")
                        .write_to(&mut stream, false);
                    let _ = stream.flush();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn batch_loop(shared: &Shared) {
    loop {
        let batch: Vec<QueuedServe> = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            // Sleep out the batching window (or until woken) so
            // concurrent arrivals coalesce into one engine batch.
            if queue.depth() == 0 {
                if queue.is_closed() {
                    return;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, shared.config.batch_window)
                    .expect("queue poisoned");
                queue = q;
            }
            queue.drain(shared.config.max_batch)
        };
        if batch.is_empty() {
            continue;
        }
        if let Some(delay) = shared.config.service_delay {
            std::thread::sleep(delay);
        }
        shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
        let requests: Vec<ModelRequest> = batch.iter().map(|q| q.request.clone()).collect();
        match shared
            .server
            .serve_many_threads(shared.config.engine_workers, &requests)
        {
            Ok(responses) => {
                for (queued, response) in batch.into_iter().zip(responses) {
                    finish_serve(shared, queued, Ok(response));
                }
            }
            Err(_) => {
                // One bad request fails a whole batch; retry each
                // request alone so its neighbors still succeed and the
                // offender gets its own error.
                for queued in batch {
                    let result = shared
                        .server
                        .serve_threads(shared.config.engine_workers, &queued.request);
                    finish_serve(shared, queued, result);
                }
            }
        }
    }
}

fn finish_serve(shared: &Shared, queued: QueuedServe, result: Result<ModelResponse, SprintError>) {
    if let Ok(response) = &result {
        shared.metrics.record_faults(
            response.total.faults_detected,
            response.total.fault_retries,
            response.total.remapped_columns,
            response.total.heads_demoted,
        );
    }
    shared
        .metrics
        .record_latency(queued.admitted_at.elapsed().as_nanos() as u64);
    shared.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
    shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
    // A dropped receiver means the client hung up; nothing to do.
    let _ = queued.reply.send(result);
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive();
                let response = route(shared, &request);
                if response.write_to(&mut writer, keep_alive).is_err() {
                    return;
                }
                let _ = writer.flush();
                if !keep_alive {
                    return;
                }
            }
            Ok(None) => return, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let body = Json::obj([("error", Json::Str(e.to_string()))]).to_string();
                let _ = Response::json(400, body).write_to(&mut writer, false);
                return;
            }
            Err(_) => return,
        }
    }
}

fn route(shared: &Shared, request: &Request) -> Response {
    shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => health(shared),
        ("GET", "/metrics") => {
            let depth = shared.queue.lock().expect("queue poisoned").depth();
            let pool = shared.server.engine().kv_pool();
            Response::text(
                200,
                shared.metrics.render(
                    depth,
                    pool.pages_in_use(),
                    pool.capacity_pages().unwrap_or(0),
                ),
            )
            .with_header("Content-Type", "text/plain; version=0.0.4")
        }
        ("POST", "/v1/serve") => serve_endpoint(shared, request),
        ("POST", "/v1/decode") => decode_endpoint(shared, request),
        _ => Response::json(404, r#"{"error":"no such endpoint"}"#),
    }
}

fn health(shared: &Shared) -> Response {
    let draining = shared.queue.lock().expect("queue poisoned").is_closed();
    let body = Json::obj([
        (
            "status",
            Json::Str(if draining { "draining" } else { "ok" }.to_string()),
        ),
        (
            "sessions_open",
            Json::Int(shared.metrics.sessions_open.load(Ordering::Relaxed) as i128),
        ),
    ]);
    Response::json(if draining { 503 } else { 200 }, body.to_string())
}

fn bad_request(message: impl Into<String>) -> Response {
    let body = Json::obj([("error", Json::Str(message.into()))]).to_string();
    Response::json(400, body)
}

fn serve_endpoint(shared: &Shared, request: &Request) -> Response {
    let body = match Json::parse(&request.body_str()) {
        Ok(body) => body,
        Err(e) => return bad_request(format!("invalid JSON body: {e}")),
    };
    let serve = match ServeRequest::parse(&body) {
        Ok(serve) => serve,
        Err(e) => return bad_request(e),
    };
    let tenant = request.header("x-tenant").unwrap_or("default").to_string();
    let (reply_tx, reply_rx) = mpsc::channel();
    let queued = QueuedServe {
        request: serve.to_model_request(),
        admitted_at: Instant::now(),
        reply: reply_tx,
    };
    {
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if let Err(rejection) = queue.submit(&tenant, queued) {
            let status = match rejection {
                Rejection::Closed => {
                    shared.metrics.unavailable.fetch_add(1, Ordering::Relaxed);
                    503
                }
                _ => {
                    shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    429
                }
            };
            let body = Json::obj([("error", Json::Str(rejection.reason()))]).to_string();
            return Response::json(status, body)
                .with_header("Retry-After", rejection.retry_after_s().to_string());
        }
        shared.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        shared.metrics.inflight.fetch_add(1, Ordering::Relaxed);
    }
    shared.queue_cv.notify_all();
    // Wait for the batcher. The generous bound only trips if the
    // batcher died; admitted work is otherwise always answered.
    match reply_rx.recv_timeout(Duration::from_secs(120)) {
        Ok(Ok(response)) => Response::json(200, protocol::response_json(&response).to_string()),
        Ok(Err(e)) => {
            let body = Json::obj([("error", Json::Str(e.to_string()))]).to_string();
            Response::json(500, body)
        }
        Err(_) => Response::json(500, r#"{"error":"serve batch loop unresponsive"}"#),
    }
}

fn decode_endpoint(shared: &Shared, request: &Request) -> Response {
    let body = match Json::parse(&request.body_str()) {
        Ok(body) => body,
        Err(e) => return bad_request(format!("invalid JSON body: {e}")),
    };
    match body.str_field("action") {
        Some("open") => decode_open(shared, &body),
        Some("step") => decode_step(shared, &body),
        Some("close") => decode_close(shared, &body),
        _ => bad_request("'action' must be one of open, step, close"),
    }
}

/// Evicts the least-recently-used resident session other than
/// `exclude`, returning whether anything was evicted. Candidates are
/// probed with `try_lock` (a locked session is mid-step and therefore
/// hot); acquisition is also non-blocking, so two handlers evicting
/// concurrently can never deadlock on each other's session locks.
fn evict_coldest(shared: &Shared, exclude: Option<u64>) -> bool {
    let mut candidates: Vec<(u64, Arc<Mutex<SessionState>>)> = {
        let sessions = shared.sessions.lock().expect("sessions poisoned");
        sessions
            .iter()
            .filter(|(&id, _)| Some(id) != exclude)
            .filter_map(|(_, entry)| {
                let state = entry.try_lock().ok()?;
                matches!(state.slot, SessionSlot::Resident(_))
                    .then(|| (state.last_used, Arc::clone(entry)))
            })
            .collect()
    };
    candidates.sort_by_key(|&(tick, _)| tick);
    for (_, entry) in candidates {
        let Ok(mut state) = entry.try_lock() else {
            continue; // grabbed by a step since the probe: hot again
        };
        match std::mem::replace(&mut state.slot, SessionSlot::Vacant) {
            SessionSlot::Resident(session) => {
                state.slot = SessionSlot::Evicted(Box::new(session.evict()));
                shared
                    .metrics
                    .sessions_evicted
                    .fetch_add(1, Ordering::Relaxed);
                shared.resident_sessions.fetch_sub(1, Ordering::Relaxed);
                return true;
            }
            other => state.slot = other, // rehydration won the race
        }
    }
    false
}

/// Parks cold sessions until at most `max_resident_sessions` hold
/// pages (no-op when unconfigured).
fn enforce_resident_cap(shared: &Shared, exclude: Option<u64>) {
    let Some(cap) = shared.config.max_resident_sessions else {
        return;
    };
    while shared.resident_sessions.load(Ordering::Relaxed) > cap as u64 {
        if !evict_coldest(shared, exclude) {
            return; // everything else is locked or already evicted
        }
    }
}

/// The `409 Conflict` answer for a KV page pool that stayed exhausted
/// even after evicting everything evictable.
fn pool_exhausted(e: &SprintError) -> Response {
    let body = Json::obj([("error", Json::Str(e.to_string()))]).to_string();
    Response::json(409, body).with_header("Retry-After", "1")
}

fn decode_open(shared: &Shared, body: &Json) -> Response {
    if shared.queue.lock().expect("queue poisoned").is_closed() {
        return Response::json(503, r#"{"error":"server is draining"}"#)
            .with_header("Retry-After", "5");
    }
    let Some(model) = body.str_field("model") else {
        return bad_request("missing 'model'");
    };
    let Some(config) = protocol::model_by_name(model) else {
        return bad_request(format!("unknown model '{model}'"));
    };
    let seq_len = body.u64_field("seq_len").unwrap_or(32) as usize;
    let prefill = body
        .u64_field("prefill")
        .map_or(seq_len / 2, |p| p as usize);
    let seed = body.u64_field("seed").unwrap_or(0);
    if prefill == 0 || prefill >= seq_len {
        return bad_request(format!("prefill {prefill} outside 1..{seq_len}"));
    }
    let mut spec = config.trace_spec().with_seq_len(seq_len);
    spec.padding_fraction = 0.0; // decode histories hold only real tokens
    let trace = match TraceGenerator::new(seed).generate(&spec) {
        Ok(trace) => trace,
        Err(e) => return bad_request(format!("trace synthesis failed: {e}")),
    };
    let session = loop {
        let open = (|| -> Result<DecodeSession, SprintError> {
            let prefill_k = trace.k().prefix_rows(prefill)?;
            let prefill_v = trace.v().prefix_rows(prefill)?;
            let session_request =
                SessionRequest::new(&prefill_k, &prefill_v, trace.config(), trace.threshold())
                    .with_head_id(seed);
            shared.server.engine().open_session(&session_request)
        })();
        match open {
            Ok(session) => break session,
            Err(e) if e.is_pool_exhausted() => {
                // Page pressure is retryable: park the coldest open
                // session and try again. 409 only when nothing is left
                // to evict — the pool is truly exhausted.
                if !evict_coldest(shared, None) {
                    return pool_exhausted(&e);
                }
            }
            Err(e) => {
                let body = Json::obj([("error", Json::Str(e.to_string()))]).to_string();
                return Response::json(500, body);
            }
        }
    };
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    shared.sessions.lock().expect("sessions poisoned").insert(
        id,
        Arc::new(Mutex::new(SessionState {
            slot: SessionSlot::Resident(Box::new(session)),
            trace,
            next_token: prefill,
            seq_len,
            last_used: shared.lru_tick.fetch_add(1, Ordering::Relaxed),
        })),
    );
    shared
        .metrics
        .sessions_opened
        .fetch_add(1, Ordering::Relaxed);
    shared.metrics.sessions_open.fetch_add(1, Ordering::Relaxed);
    shared.resident_sessions.fetch_add(1, Ordering::Relaxed);
    enforce_resident_cap(shared, Some(id));
    let body = Json::obj([
        ("session", Json::Int(id as i128)),
        ("position", Json::Int(prefill as i128)),
        ("seq_len", Json::Int(seq_len as i128)),
    ]);
    Response::json(200, body.to_string())
}

fn session_of(shared: &Shared, body: &Json) -> Result<(u64, Arc<Mutex<SessionState>>), Response> {
    let Some(id) = body.u64_field("session") else {
        return Err(bad_request("missing 'session' id"));
    };
    let sessions = shared.sessions.lock().expect("sessions poisoned");
    match sessions.get(&id) {
        Some(entry) => Ok((id, Arc::clone(entry))),
        None => Err(Response::json(
            404,
            Json::obj([("error", Json::Str(format!("no session {id}")))]).to_string(),
        )),
    }
}

fn decode_step(shared: &Shared, body: &Json) -> Response {
    let (id, entry) = match session_of(shared, body) {
        Ok(found) => found,
        Err(response) => return response,
    };
    let mut state = entry.lock().expect("session poisoned");
    if state.next_token >= state.seq_len {
        return Response::json(
            409,
            r#"{"error":"session exhausted its token stream; close it"}"#,
        );
    }
    state.last_used = shared.lru_tick.fetch_add(1, Ordering::Relaxed);
    // Transparent rehydration: an evicted session rebuilds from its
    // replayed trace history through the ordinary prefill path before
    // the step serves. Pool pressure evicts a colder session and
    // retries; 409 only when nothing else can be evicted.
    while matches!(state.slot, SessionSlot::Evicted(_)) {
        let resume = (|| -> Result<DecodeSession, SprintError> {
            let SessionSlot::Evicted(stub) = &state.slot else {
                unreachable!("guarded by the loop condition");
            };
            let k = state.trace.k().prefix_rows(state.next_token)?;
            let v = state.trace.v().prefix_rows(state.next_token)?;
            shared.server.engine().resume_session(stub, &k, &v)
        })();
        match resume {
            Ok(session) => {
                state.slot = SessionSlot::Resident(Box::new(session));
                shared
                    .metrics
                    .sessions_rehydrated
                    .fetch_add(1, Ordering::Relaxed);
                shared.resident_sessions.fetch_add(1, Ordering::Relaxed);
                enforce_resident_cap(shared, Some(id));
            }
            Err(e) if e.is_pool_exhausted() => {
                if !evict_coldest(shared, Some(id)) {
                    return pool_exhausted(&e);
                }
            }
            Err(e) => {
                let body = Json::obj([("error", Json::Str(e.to_string()))]).to_string();
                return Response::json(500, body);
            }
        }
    }
    let t = state.next_token;
    // Owned copies: the trace and the session live in the same entry,
    // so borrowing rows across the mutable step call cannot work.
    let (q, k, v) = (
        state.trace.q().row(t).to_vec(),
        state.trace.k().row(t).to_vec(),
        state.trace.v().row(t).to_vec(),
    );
    let step = DecodeStep {
        q: &q,
        k: &k,
        v: &v,
    };
    let response = loop {
        let SessionSlot::Resident(session) = &mut state.slot else {
            unreachable!("rehydrated above");
        };
        match session.step(&step) {
            Ok(response) => break response,
            Err(e) if e.is_pool_exhausted() => {
                // The history append needed a page the pool could not
                // give; the failed push left the session untouched.
                if !evict_coldest(shared, Some(id)) {
                    return pool_exhausted(&e);
                }
            }
            Err(e) => {
                let body = Json::obj([("error", Json::Str(e.to_string()))]).to_string();
                return Response::json(500, body);
            }
        }
    };
    state.next_token += 1;
    shared.metrics.decode_steps.fetch_add(1, Ordering::Relaxed);
    shared.metrics.record_faults(
        response.perf.faults_detected,
        response.perf.fault_retries,
        0,
        0,
    );
    let output: Vec<Json> = response
        .output
        .iter()
        .map(|&x| Json::Num(f64::from(x)))
        .collect();
    let body = Json::obj([
        ("position", Json::Int(response.position as i128)),
        ("kept", Json::Int(response.decision.kept_count() as i128)),
        ("considered", Json::Int(response.decision.len() as i128)),
        ("demoted", Json::Bool(response.perf.demoted)),
        ("output", Json::Arr(output)),
    ]);
    Response::json(200, body.to_string())
}

fn decode_close(shared: &Shared, body: &Json) -> Response {
    let Some(id) = body.u64_field("session") else {
        return bad_request("missing 'session' id");
    };
    let entry = shared
        .sessions
        .lock()
        .expect("sessions poisoned")
        .remove(&id);
    let Some(entry) = entry else {
        return Response::json(
            404,
            Json::obj([("error", Json::Str(format!("no session {id}")))]).to_string(),
        );
    };
    shared.metrics.sessions_open.fetch_sub(1, Ordering::Relaxed);
    let state = entry.lock().expect("session poisoned");
    let perf = match &state.slot {
        SessionSlot::Resident(session) => {
            shared.resident_sessions.fetch_sub(1, Ordering::Relaxed);
            *session.perf()
        }
        SessionSlot::Evicted(stub) => *stub.perf(),
        SessionSlot::Vacant => unreachable!("vacant only inside a held lock"),
    };
    let body = Json::obj([
        ("session", Json::Int(id as i128)),
        ("tokens", Json::Int(perf.tokens as i128)),
        ("cycles", Json::Int(perf.cycles as i128)),
        ("kept_fraction", Json::Num(perf.kept_fraction())),
        ("recalibrations", Json::Int(perf.recalibrations as i128)),
        ("evictions", Json::Int(perf.evictions as i128)),
        ("rehydrations", Json::Int(perf.rehydrations as i128)),
        ("faults_detected", Json::Int(perf.faults_detected as i128)),
        ("fault_retries", Json::Int(perf.fault_retries as i128)),
        ("demoted", Json::Bool(perf.demoted)),
    ]);
    Response::json(200, body.to_string())
}
