//! Bounded per-tenant admission queues with fair round-robin drain.
//!
//! Admission control is the server's backpressure primitive: each
//! tenant gets a bounded FIFO, a global cap bounds aggregate memory,
//! and an over-capacity submit is *rejected at the door* (the HTTP
//! layer turns that into `429 Too Many Requests` + `Retry-After`)
//! instead of queuing unboundedly and letting tail latency run away.
//!
//! The drain side is round-robin across tenants — a tenant flooding
//! its own queue delays itself, not its neighbors.

use std::collections::VecDeque;

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The tenant's own queue is full.
    TenantFull {
        /// The per-tenant capacity that was hit.
        capacity: usize,
    },
    /// The global cap across all tenants is full.
    GlobalFull {
        /// The global capacity that was hit.
        capacity: usize,
    },
    /// The queue is closed (server draining); nothing new is admitted.
    Closed,
}

impl Rejection {
    /// The `Retry-After` hint in seconds: how long a well-behaved
    /// client should back off. Closed means "the server is going
    /// away"; fullness is transient.
    pub fn retry_after_s(&self) -> u64 {
        match self {
            Rejection::TenantFull { .. } | Rejection::GlobalFull { .. } => 1,
            Rejection::Closed => 5,
        }
    }

    /// A client-facing reason string.
    pub fn reason(&self) -> String {
        match self {
            Rejection::TenantFull { capacity } => {
                format!("tenant queue full (capacity {capacity})")
            }
            Rejection::GlobalFull { capacity } => {
                format!("server queue full (capacity {capacity})")
            }
            Rejection::Closed => "server is draining".to_string(),
        }
    }
}

/// A bounded multi-tenant FIFO. Not internally synchronized — the
/// server wraps it in a `Mutex` alongside its condvar.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    tenants: Vec<(String, VecDeque<T>)>,
    per_tenant: usize,
    global: usize,
    depth: usize,
    next_tenant: usize,
    closed: bool,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue admitting up to `per_tenant` items per tenant
    /// and `global` items in total (both ≥ 1 enforced by clamping).
    pub fn new(per_tenant: usize, global: usize) -> Self {
        AdmissionQueue {
            tenants: Vec::new(),
            per_tenant: per_tenant.max(1),
            global: global.max(1),
            depth: 0,
            next_tenant: 0,
            closed: false,
        }
    }

    /// Items currently queued across all tenants.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether [`AdmissionQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Stops admitting new work. Queued items still drain.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Admits `item` under `tenant`, or explains the refusal.
    ///
    /// # Errors
    ///
    /// [`Rejection`] when closed or at capacity; the item is returned
    /// to the caller untouched in spirit (it is consumed — callers
    /// reply to the client with the rejection).
    pub fn submit(&mut self, tenant: &str, item: T) -> Result<(), Rejection> {
        if self.closed {
            return Err(Rejection::Closed);
        }
        if self.depth >= self.global {
            return Err(Rejection::GlobalFull {
                capacity: self.global,
            });
        }
        let idx = match self.tenants.iter().position(|(name, _)| name == tenant) {
            Some(i) => i,
            None => {
                self.tenants.push((tenant.to_string(), VecDeque::new()));
                self.tenants.len() - 1
            }
        };
        if self.tenants[idx].1.len() >= self.per_tenant {
            return Err(Rejection::TenantFull {
                capacity: self.per_tenant,
            });
        }
        self.tenants[idx].1.push_back(item);
        self.depth += 1;
        Ok(())
    }

    /// Pops up to `max` items, visiting tenants round-robin (one item
    /// per tenant per lap) starting after the last tenant served.
    /// Returns an empty vec when idle.
    pub fn drain(&mut self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        if self.tenants.is_empty() || max == 0 {
            return out;
        }
        let n = self.tenants.len();
        let mut misses = 0;
        while out.len() < max && misses < n {
            let idx = self.next_tenant % n;
            self.next_tenant = (self.next_tenant + 1) % n;
            match self.tenants[idx].1.pop_front() {
                Some(item) => {
                    out.push(item);
                    self.depth -= 1;
                    misses = 0;
                }
                None => misses += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tenant_and_global_caps_reject() {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(2, 3);
        assert!(q.submit("a", 1).is_ok());
        assert!(q.submit("a", 2).is_ok());
        assert_eq!(
            q.submit("a", 3),
            Err(Rejection::TenantFull { capacity: 2 }),
            "third item for one tenant sheds"
        );
        assert!(q.submit("b", 4).is_ok());
        assert_eq!(
            q.submit("c", 5),
            Err(Rejection::GlobalFull { capacity: 3 }),
            "global cap sheds even a fresh tenant"
        );
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn drain_is_round_robin_fair() {
        let mut q: AdmissionQueue<&str> = AdmissionQueue::new(8, 64);
        for item in ["a1", "a2", "a3"] {
            q.submit("a", item).unwrap();
        }
        q.submit("b", "b1").unwrap();
        // One lap: each tenant contributes one item before 'a' repeats.
        assert_eq!(q.drain(2), vec!["a1", "b1"]);
        assert_eq!(q.drain(10), vec!["a2", "a3"]);
        assert_eq!(q.depth(), 0);
        assert!(q.drain(4).is_empty());
    }

    #[test]
    fn close_rejects_new_but_drains_old() {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(4, 4);
        q.submit("a", 1).unwrap();
        q.close();
        assert_eq!(q.submit("a", 2), Err(Rejection::Closed));
        assert_eq!(q.drain(4), vec![1], "queued work survives the close");
        assert!(Rejection::Closed.retry_after_s() >= 1);
    }

    #[test]
    fn rejection_reasons_are_client_readable() {
        assert!(Rejection::TenantFull { capacity: 2 }
            .reason()
            .contains("tenant queue full"));
        assert!(Rejection::GlobalFull { capacity: 9 }.reason().contains("9"));
        assert!(Rejection::Closed.reason().contains("draining"));
    }
}
