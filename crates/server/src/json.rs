//! A minimal JSON value: parse, render, and field access.
//!
//! The workspace's vendored `serde` is an offline no-op stand-in, so
//! the wire protocol is built on this hand-rolled module instead. It
//! covers exactly what the serving protocol needs — objects, arrays,
//! strings with the standard escapes, integers, floats, booleans and
//! null — and keeps two deliberate properties:
//!
//! * **Integers stay exact.** Whole numbers parse into [`Json::Int`]
//!   (an `i128`), never through `f64`, so `u64` counters and `u128`
//!   nanosecond latencies round-trip bit-exactly.
//! * **Floats render shortest-round-trip.** [`Json::Num`] renders via
//!   Rust's `{}` formatting, which emits the shortest decimal string
//!   that parses back to the same `f64` — two floats render equal iff
//!   they are bit-identical. The integration tests lean on this to
//!   compare HTTP responses against direct engine calls.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A whole number (no fraction or exponent in the source).
    Int(i128),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. A sorted map: key order is canonicalized, so two
    /// renders of equal objects are byte-identical regardless of
    /// construction order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`; accepts only exact whole numbers in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen; beyond ±2^53 they round).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)` as a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }

    /// Convenience: `self.get(key)` as a `u64`.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }

    /// Parses a JSON document (must consume the full input).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error, with a
    /// byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            // JSON has no NaN/Inf literal; null is the least-bad spill.
            Json::Num(_) => write!(f, "null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&c) => Err(format!(
                "unexpected byte '{}' at offset {}",
                c as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            // Surrogates are rejected rather than
                            // paired; the protocol never emits them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if fractional {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("bad number '{text}'"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_round_trip() {
        let text = r#"{"a":1,"b":[true,null,-2.5],"c":"x\"y\n","d":{"e":18446744073709551615}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.u64_field("a"), Some(1));
        assert_eq!(
            v.get("d").unwrap().u64_field("e"),
            Some(u64::MAX),
            "u64::MAX survives exactly"
        );
        assert_eq!(v.str_field("c"), Some("x\"y\n"));
        let rendered = v.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), v, "render round-trips");
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Num(7.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::Int(-3).to_string(), "-3");
    }

    #[test]
    fn float_rendering_is_shortest_round_trip() {
        for x in [0.1, 1.0 / 3.0, 2.5e-9, f64::MAX] {
            let rendered = Json::Num(x).to_string();
            assert_eq!(rendered.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "1 2", "tru", "\u{1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let v = Json::parse(" { \"k\" : [ { \"x\" : 1 } , 2 ] } ").unwrap();
        let arr = match v.get("k") {
            Some(Json::Arr(a)) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].u64_field("x"), Some(1));
    }
}
