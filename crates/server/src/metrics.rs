//! Server-wide counters and the `/metrics` text exposition.
//!
//! Everything is lock-free atomics except the latency reservoir (a
//! small mutex-guarded ring of recent request latencies, sampled for
//! the quantile gauges). The exposition follows the Prometheus text
//! format: `# HELP`/`# TYPE` preamble per family, one sample per line,
//! quantiles as `{quantile="..."}` labels.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Capacity of the latency reservoir: quantiles reflect the most
/// recent this-many completed requests.
pub const LATENCY_RING: usize = 4096;

/// Shared server counters. One instance per [`crate::Server`], behind
/// an `Arc`; every handler and the batcher update it.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Requests that reached routing (any endpoint).
    pub http_requests: AtomicU64,
    /// Serve requests admitted into a queue.
    pub admitted: AtomicU64,
    /// Serve requests rejected with 429 (queue full).
    pub rejected: AtomicU64,
    /// Serve requests rejected with 503 (shutting down / overloaded
    /// accept path).
    pub unavailable: AtomicU64,
    /// Serve requests completed (response written).
    pub completed: AtomicU64,
    /// Serve requests currently admitted but not yet completed.
    pub inflight: AtomicU64,
    /// Engine batches dispatched by the batcher.
    pub batches: AtomicU64,
    /// Decode sessions opened over HTTP.
    pub sessions_opened: AtomicU64,
    /// Decode sessions currently open.
    pub sessions_open: AtomicU64,
    /// Decode steps served.
    pub decode_steps: AtomicU64,
    /// Decode sessions whose KV pages were dropped back to the shared
    /// pool (the session survives; its next step rehydrates it).
    pub sessions_evicted: AtomicU64,
    /// Decode sessions rebuilt from their replayed token history.
    pub sessions_rehydrated: AtomicU64,
    /// ReRAM cell faults detected, rolled up across responses.
    pub faults_detected: AtomicU64,
    /// Write-verify repair retries, rolled up across responses.
    pub fault_retries: AtomicU64,
    /// Crossbar columns remapped to spares, rolled up.
    pub remapped_columns: AtomicU64,
    /// Heads demoted to the exact digital pipeline, rolled up.
    pub heads_demoted: AtomicU64,
    latencies_ns: Mutex<LatencyRing>,
}

#[derive(Debug)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            http_requests: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            sessions_open: AtomicU64::new(0),
            decode_steps: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            sessions_rehydrated: AtomicU64::new(0),
            faults_detected: AtomicU64::new(0),
            fault_retries: AtomicU64::new(0),
            remapped_columns: AtomicU64::new(0),
            heads_demoted: AtomicU64::new(0),
            latencies_ns: Mutex::new(LatencyRing {
                samples: Vec::with_capacity(LATENCY_RING),
                next: 0,
            }),
        }
    }
}

impl Metrics {
    /// A zeroed metrics block whose uptime clock starts now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request's end-to-end latency.
    pub fn record_latency(&self, ns: u64) {
        let mut ring = self.latencies_ns.lock().expect("latency ring poisoned");
        if ring.samples.len() < LATENCY_RING {
            ring.samples.push(ns);
        } else {
            let slot = ring.next;
            ring.samples[slot] = ns;
        }
        ring.next = (ring.next + 1) % LATENCY_RING;
    }

    /// Folds one response's fault rollup into the counters.
    pub fn record_faults(&self, detected: u64, retries: u64, remapped: u64, demoted: u64) {
        self.faults_detected.fetch_add(detected, Ordering::Relaxed);
        self.fault_retries.fetch_add(retries, Ordering::Relaxed);
        self.remapped_columns.fetch_add(remapped, Ordering::Relaxed);
        self.heads_demoted.fetch_add(demoted, Ordering::Relaxed);
    }

    /// Nearest-rank quantiles over the reservoir: `(p50, p90, p99)` in
    /// nanoseconds, zeros when nothing has completed.
    pub fn latency_quantiles_ns(&self) -> (u64, u64, u64) {
        let ring = self.latencies_ns.lock().expect("latency ring poisoned");
        if ring.samples.is_empty() {
            return (0, 0, 0);
        }
        let mut sorted = ring.samples.clone();
        sorted.sort_unstable();
        let pick = |pct: f64| {
            let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        (pick(50.0), pick(90.0), pick(99.0))
    }

    /// Completed requests per second of server uptime.
    pub fn qps(&self) -> f64 {
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        self.completed.load(Ordering::Relaxed) as f64 / uptime
    }

    /// Renders the Prometheus-style text exposition, with the live
    /// queue depth and KV pool occupancy supplied by the caller (the
    /// queue and the engine's page pool own those numbers;
    /// `kv_pages_capacity` of zero means the pool is unbounded).
    pub fn render(
        &self,
        queue_depth: usize,
        kv_pages_in_use: usize,
        kv_pages_capacity: usize,
    ) -> String {
        let (p50, p90, p99) = self.latency_quantiles_ns();
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        let gauge = |out: &mut String, name: &str, help: &str, value: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::new();
        counter(
            &mut out,
            "sprint_http_requests_total",
            "HTTP requests routed (all endpoints).",
            load(&self.http_requests),
        );
        counter(
            &mut out,
            "sprint_requests_admitted_total",
            "Serve requests admitted into a tenant queue.",
            load(&self.admitted),
        );
        counter(
            &mut out,
            "sprint_requests_rejected_total",
            "Serve requests shed with 429 (queue full).",
            load(&self.rejected),
        );
        counter(
            &mut out,
            "sprint_requests_unavailable_total",
            "Serve requests refused with 503 (draining or overloaded).",
            load(&self.unavailable),
        );
        counter(
            &mut out,
            "sprint_requests_completed_total",
            "Serve requests completed.",
            load(&self.completed),
        );
        counter(
            &mut out,
            "sprint_batches_total",
            "Engine batches dispatched by the batching loop.",
            load(&self.batches),
        );
        gauge(
            &mut out,
            "sprint_requests_inflight",
            "Serve requests admitted but not yet completed.",
            load(&self.inflight).to_string(),
        );
        gauge(
            &mut out,
            "sprint_queue_depth",
            "Serve requests waiting in tenant queues.",
            queue_depth.to_string(),
        );
        gauge(
            &mut out,
            "sprint_qps",
            "Completed serve requests per second of uptime.",
            format!("{:.3}", self.qps()),
        );
        out.push_str("# HELP sprint_request_latency_ms End-to-end serve latency quantiles over the recent-request reservoir.\n");
        out.push_str("# TYPE sprint_request_latency_ms gauge\n");
        for (q, ns) in [("0.5", p50), ("0.9", p90), ("0.99", p99)] {
            out.push_str(&format!(
                "sprint_request_latency_ms{{quantile=\"{q}\"}} {:.3}\n",
                ns as f64 / 1e6
            ));
        }
        counter(
            &mut out,
            "sprint_decode_sessions_opened_total",
            "Decode sessions opened over HTTP.",
            load(&self.sessions_opened),
        );
        gauge(
            &mut out,
            "sprint_decode_sessions_open",
            "Decode sessions currently open.",
            load(&self.sessions_open).to_string(),
        );
        counter(
            &mut out,
            "sprint_decode_steps_total",
            "Decode steps served.",
            load(&self.decode_steps),
        );
        counter(
            &mut out,
            "sprint_sessions_evicted_total",
            "Decode sessions whose KV pages were dropped back to the pool.",
            load(&self.sessions_evicted),
        );
        counter(
            &mut out,
            "sprint_sessions_rehydrated_total",
            "Decode sessions rebuilt from their replayed token history.",
            load(&self.sessions_rehydrated),
        );
        gauge(
            &mut out,
            "sprint_kv_pages_in_use",
            "Pages resident in the shared KV page pool.",
            kv_pages_in_use.to_string(),
        );
        gauge(
            &mut out,
            "sprint_kv_pages_capacity",
            "Page capacity of the KV pool (0 = unbounded).",
            kv_pages_capacity.to_string(),
        );
        counter(
            &mut out,
            "sprint_fault_cells_detected_total",
            "ReRAM cell faults detected across all served work.",
            load(&self.faults_detected),
        );
        counter(
            &mut out,
            "sprint_fault_retries_total",
            "Write-verify repair retries across all served work.",
            load(&self.fault_retries),
        );
        counter(
            &mut out,
            "sprint_fault_remapped_columns_total",
            "Crossbar columns remapped to spares across all served work.",
            load(&self.remapped_columns),
        );
        counter(
            &mut out,
            "sprint_heads_demoted_total",
            "Heads demoted to the exact digital pipeline across all served work.",
            load(&self.heads_demoted),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_renders_all_families() {
        let m = Metrics::new();
        m.http_requests.fetch_add(3, Ordering::Relaxed);
        m.completed.fetch_add(2, Ordering::Relaxed);
        m.record_faults(5, 2, 1, 1);
        m.record_latency(1_000_000);
        m.record_latency(3_000_000);
        m.sessions_evicted.fetch_add(6, Ordering::Relaxed);
        m.sessions_rehydrated.fetch_add(4, Ordering::Relaxed);
        let text = m.render(4, 9, 16);
        for needle in [
            "sprint_http_requests_total 3",
            "sprint_requests_completed_total 2",
            "sprint_queue_depth 4",
            "sprint_sessions_evicted_total 6",
            "sprint_sessions_rehydrated_total 4",
            "sprint_kv_pages_in_use 9",
            "sprint_kv_pages_capacity 16",
            "sprint_request_latency_ms{quantile=\"0.5\"} 1.000",
            "sprint_request_latency_ms{quantile=\"0.99\"} 3.000",
            "sprint_fault_cells_detected_total 5",
            "sprint_fault_retries_total 2",
            "sprint_fault_remapped_columns_total 1",
            "sprint_heads_demoted_total 1",
            "# TYPE sprint_qps gauge",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn latency_ring_wraps_without_growing() {
        let m = Metrics::new();
        for i in 0..(LATENCY_RING as u64 + 100) {
            m.record_latency(i);
        }
        let (p50, _, p99) = m.latency_quantiles_ns();
        // The oldest 100 samples were overwritten; quantiles come from
        // the most recent LATENCY_RING values (100..4196).
        assert!(p50 >= 100, "p50 {p50}");
        assert!(p99 < LATENCY_RING as u64 + 100, "p99 {p99}");
    }

    #[test]
    fn quantiles_empty_reservoir_is_zero() {
        assert_eq!(Metrics::new().latency_quantiles_ns(), (0, 0, 0));
    }
}
