//! `sprint_server` — boot the HTTP serving front end.
//!
//! ```text
//! cargo run --release -p sprint-server --bin sprint_server -- \
//!     --addr 127.0.0.1:8080 --seed 7 --serve-seconds 60
//! ```
//!
//! Flags (all optional):
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:8080`;
//!   port 0 picks an ephemeral port and prints it).
//! * `--seed N` — engine base seed (default 7).
//! * `--http-threads N` / `--max-batch N` / `--batch-window-ms N` /
//!   `--queue-per-tenant N` / `--queue-global N` — the corresponding
//!   [`ServerConfig`] knobs.
//! * `--kv-pool-pages N` — cap the shared KV page pool at N pages
//!   (decode sessions beyond the cap are LRU-evicted and rehydrated
//!   transparently; default 0 = unbounded).
//! * `--kv-page-bytes N` — KV page size in bytes (default 65536).
//! * `--max-resident-sessions N` — cap how many decode sessions hold
//!   KV pages at once (default 0 = uncapped).
//! * `--serve-seconds N` — run for N seconds, then shut down
//!   gracefully (CI smoke uses this; the default runs until SIGKILL).

use sprint_attention::{PagePool, DEFAULT_PAGE_BYTES};
use sprint_engine::{Engine, SprintConfig};
use sprint_server::{Server, ServerConfig};
use std::time::Duration;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            let prefix = format!("{flag}=");
            args.iter()
                .find(|a| a.starts_with(&prefix))
                .map(|a| a[prefix.len()..].to_string())
        })
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_resident: usize = parse(&args, "--max-resident-sessions", 0);
    let config = ServerConfig {
        addr: arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        http_threads: parse(&args, "--http-threads", 4),
        batch_window: Duration::from_millis(parse(&args, "--batch-window-ms", 2)),
        max_batch: parse(&args, "--max-batch", 16),
        queue_per_tenant: parse(&args, "--queue-per-tenant", 32),
        queue_global: parse(&args, "--queue-global", 128),
        max_resident_sessions: (max_resident > 0).then_some(max_resident),
        ..ServerConfig::default()
    };
    let seed = parse(&args, "--seed", 7u64);
    let serve_seconds: u64 = parse(&args, "--serve-seconds", 0);

    let page_bytes: usize = parse(&args, "--kv-page-bytes", DEFAULT_PAGE_BYTES);
    let pool_pages: usize = parse(&args, "--kv-pool-pages", 0);
    let kv_pool = if pool_pages > 0 {
        PagePool::bounded(page_bytes, pool_pages)
    } else {
        PagePool::unbounded(page_bytes)
    };
    let engine = Engine::builder(SprintConfig::small())
        .seed(seed)
        .kv_pool(kv_pool)
        .build()?;
    let server = Server::start(engine, config)?;
    // Machine-greppable boot line (CI curls the printed address).
    println!("sprint-server listening on {}", server.local_addr());

    if serve_seconds > 0 {
        std::thread::sleep(Duration::from_secs(serve_seconds));
        println!("sprint-server draining after {serve_seconds}s");
        server.shutdown();
        println!("sprint-server stopped");
    } else {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    Ok(())
}
