//! `stress_test` — sustained-load harness for the HTTP front end.
//!
//! Boots an in-process [`sprint_server::Server`] on an ephemeral port
//! and replays [`sprint_workloads::ArrivalSpec`] traffic at it over
//! real sockets, in two phases:
//!
//! 1. **capacity** — bursty Poisson traffic (the new
//!    [`sprint_workloads::ArrivalShape::Burst`] shape) against the
//!    production admission config. Records the sustained completed
//!    QPS and the p50/p99 client-observed latency.
//! 2. **overload** — a ramp ([`sprint_workloads::ArrivalShape::Ramp`])
//!    averaging ~2× the server's deliberately throttled capacity
//!    (an injected per-batch service delay makes capacity exact and
//!    host-independent), against tiny admission queues. The server
//!    must *shed* (429 + `Retry-After`) rather than let the tail run
//!    away: the harness records the shed rate (ppm) and the p99 of
//!    the requests that did complete.
//!
//! Rows merge into `BENCH_report.json` under `server/...` ids;
//! `cargo run -p sprint-bench --bin report -- --check` enforces the
//! sustained-QPS floor, a shed-rate band, and the bounded overload
//! p99. `--no-report` skips the merge (pure smoke run); `--quick`
//! shrinks both phases for CI smoke.

use criterion::report::{merge_bench_records, repo_root};
use criterion::BenchRecord;
use sprint_engine::{Engine, SprintConfig};
use sprint_server::{Server, ServerConfig};
use sprint_workloads::{ArrivalSpec, TraceGenerator};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Capacity-phase client workers (each owns one keep-alive
/// connection).
const CAPACITY_WORKERS: usize = 4;

/// Overload-phase client workers. Clients are closed-loop (a worker
/// blocks on its in-flight request), so the worker count bounds the
/// in-flight concurrency — it must comfortably exceed the overload
/// config's queue capacity plus the batch in service, or the queues
/// can never fill and nothing sheds.
const OVERLOAD_WORKERS: usize = 16;

#[derive(Debug, Default, Clone)]
struct PhaseStats {
    completed: u64,
    shed: u64,
    other: u64,
    latencies_ns: Vec<u64>,
    wall: Duration,
}

impl PhaseStats {
    fn offered(&self) -> u64 {
        self.completed + self.shed + self.other
    }

    fn qps(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn shed_ppm(&self) -> u64 {
        if self.offered() == 0 {
            return 0;
        }
        (self.shed as f64 / self.offered() as f64 * 1e6).round() as u64
    }

    fn percentile_ns(&mut self, pct: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        self.latencies_ns.sort_unstable();
        let rank = ((pct / 100.0) * self.latencies_ns.len() as f64).ceil() as usize;
        self.latencies_ns[rank.clamp(1, self.latencies_ns.len()) - 1]
    }
}

/// Replays `arrivals` (virtual ns mapped 1:1 onto real ns) against
/// `addr`, striped across `workers` keep-alive clients.
fn replay(
    addr: &str,
    arrivals: &[sprint_workloads::Arrival],
    body: &str,
    workers: usize,
) -> PhaseStats {
    let started = Instant::now();
    let addr = Arc::new(addr.to_string());
    let body = Arc::new(body.to_string());
    let mut handles = Vec::new();
    for w in 0..workers {
        let mine: Vec<u64> = arrivals
            .iter()
            .enumerate()
            .filter(|(i, _)| i % workers == w)
            .map(|(_, a)| a.at_ns)
            .collect();
        let addr = Arc::clone(&addr);
        let body = Arc::clone(&body);
        handles.push(std::thread::spawn(move || {
            let mut client = minihttp::Client::connect(addr.as_str().to_string())
                .with_read_timeout(Some(Duration::from_secs(30)));
            let mut stats = PhaseStats::default();
            for at_ns in mine {
                let due = Duration::from_nanos(at_ns);
                if let Some(wait) = due.checked_sub(started.elapsed()) {
                    std::thread::sleep(wait);
                }
                let sent = Instant::now();
                match client.post_json("/v1/serve", &body) {
                    Ok(response) if response.status == 200 => {
                        stats.completed += 1;
                        stats.latencies_ns.push(sent.elapsed().as_nanos() as u64);
                    }
                    Ok(response) if response.status == 429 => stats.shed += 1,
                    Ok(_) | Err(_) => stats.other += 1,
                }
            }
            stats
        }));
    }
    let mut total = PhaseStats::default();
    for handle in handles {
        let stats = handle.join().expect("client worker panicked");
        total.completed += stats.completed;
        total.shed += stats.shed;
        total.other += stats.other;
        total.latencies_ns.extend(stats.latencies_ns);
    }
    total.wall = started.elapsed();
    total
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_report = args.iter().any(|a| a == "--no-report");
    let seed = 42u64;
    // Tiny shape: the harness measures the serving fabric, not the
    // substrate, and must hold its floors on a single-core host.
    let body = r#"{"model":"synth1","layers":1,"heads":1,"seq_len":16,"seed":3}"#;

    // ---- Phase 1: capacity (bursty traffic, production config) ----
    let count = if quick { 40 } else { 240 };
    let engine = Engine::builder(SprintConfig::small()).seed(7).build()?;
    let server = Server::start(engine, ServerConfig::default())?;
    let addr = server.local_addr().to_string();
    // Mean gap 20 ms (50 req/s offered) in bursts of 8 spread over
    // 2 ms — the pattern that exercises window coalescing hardest.
    let arrivals = TraceGenerator::new(seed)
        .arrivals(&ArrivalSpec::poisson(count, 20_000_000.0, 1).burst(8, 2_000_000.0))?;
    let mut capacity = replay(&addr, &arrivals, body, CAPACITY_WORKERS);
    let capacity_p50 = capacity.percentile_ns(50.0);
    let capacity_p99 = capacity.percentile_ns(99.0);
    server.shutdown();
    println!(
        "[capacity] offered {} completed {} shed {} other {} in {:.2}s -> {:.1} QPS, p50 {:.2} ms, p99 {:.2} ms",
        capacity.offered(),
        capacity.completed,
        capacity.shed,
        capacity.other,
        capacity.wall.as_secs_f64(),
        capacity.qps(),
        capacity_p50 as f64 / 1e6,
        capacity_p99 as f64 / 1e6,
    );

    // ---- Phase 2: overload (~2x capacity, tiny queues) ----
    // Throttled capacity: max_batch 2 per >=25 ms batch -> ~80 req/s.
    // The ramp averages ~2x that (80 -> 320 req/s across the phase),
    // so the bounded queues must shed.
    let count = if quick { 80 } else { 400 };
    let engine = Engine::builder(SprintConfig::small()).seed(7).build()?;
    let server = Server::start(
        engine,
        ServerConfig {
            // Handlers are connection-pinned, so the pool must exceed
            // the client count for all clients to contend at once.
            http_threads: OVERLOAD_WORKERS + 2,
            max_batch: 2,
            batch_window: Duration::from_millis(1),
            queue_per_tenant: 4,
            queue_global: 8,
            service_delay: Some(Duration::from_millis(25)),
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr().to_string();
    let arrivals = TraceGenerator::new(seed + 1)
        .arrivals(&ArrivalSpec::poisson(count, 6_250_000.0, 1).ramp(2.0, 0.5))?;
    let mut overload = replay(&addr, &arrivals, body, OVERLOAD_WORKERS);
    let overload_p99 = overload.percentile_ns(99.0);
    server.shutdown();
    println!(
        "[overload] offered {} completed {} shed {} other {} in {:.2}s -> {:.1} QPS, shed {} ppm, p99 {:.2} ms",
        overload.offered(),
        overload.completed,
        overload.shed,
        overload.other,
        overload.wall.as_secs_f64(),
        overload.qps(),
        overload.shed_ppm(),
        overload_p99 as f64 / 1e6,
    );

    if overload.shed == 0 {
        eprintln!("warning: overload phase shed nothing; queues never filled");
    }

    if !no_report {
        let records = vec![
            BenchRecord {
                id: "server/stress/sustained_qps".to_string(),
                median_ns: capacity.qps().round() as u128,
                min_ns: capacity.qps().round() as u128,
                max_ns: capacity.qps().round() as u128,
                samples: capacity.completed as usize,
            },
            BenchRecord {
                id: "server/stress/p50_ns".to_string(),
                median_ns: capacity_p50 as u128,
                min_ns: capacity_p50 as u128,
                max_ns: capacity_p99 as u128,
                samples: capacity.completed as usize,
            },
            BenchRecord {
                id: "server/stress/p99_ns".to_string(),
                median_ns: capacity_p99 as u128,
                min_ns: capacity_p50 as u128,
                max_ns: capacity_p99 as u128,
                samples: capacity.completed as usize,
            },
            BenchRecord {
                id: "server/overload/shed_rate_ppm".to_string(),
                median_ns: overload.shed_ppm() as u128,
                min_ns: overload.shed_ppm() as u128,
                max_ns: overload.shed_ppm() as u128,
                samples: overload.offered() as usize,
            },
            BenchRecord {
                id: "server/overload/p99_ns".to_string(),
                median_ns: overload_p99 as u128,
                min_ns: overload_p99 as u128,
                max_ns: overload_p99 as u128,
                samples: overload.completed as usize,
            },
        ];
        let path = repo_root().join("BENCH_report.json");
        merge_bench_records(&path, &records)?;
        println!(
            "merged {} server rows into {}",
            records.len(),
            path.display()
        );
    }
    Ok(())
}
