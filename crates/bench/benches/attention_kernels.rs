//! Criterion bench: fused attention kernels vs the naive originals.
//!
//! This is the before/after harness for the fused-kernel work: the
//! `naive/*` ids time the seed implementations preserved in
//! `sprint_attention::reference`, the `fused/*` ids time the shipping
//! kernels, and the `fused/pruned/rate*` series shows the sparse-AV
//! stage scaling with the prune rate. Run with `-- --bench-json` to
//! record the timings in `BENCH_report.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sprint_attention::reference::{dense_attention_naive, pruned_attention_naive};
use sprint_attention::{
    calibrate_threshold, dense_attention, pruned_attention_with, AttentionConfig, Matrix,
    PaddingMask, Workspace,
};

const SEQ: usize = 512;
const DIM: usize = 64;

/// Deterministic pseudo-random matrix (no rand dependency in benches).
fn random_matrix(rows: usize, cols: usize, seed: u64, amp: f32) -> Matrix {
    let mut x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(0x2545f4914f6cdd1d);
    let mut next = move || {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 29;
        amp * (((x >> 40) as f32 / 16777216.0) - 0.5)
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
}

/// Threshold that prunes `rate` of this head's live scores (the
/// calibrated stand-in for the learned `Th` of Eq. 3).
fn threshold_for(q: &Matrix, k: &Matrix, cfg: &AttentionConfig, rate: f64, live: usize) -> f32 {
    let scores = q.matmul_transposed(k).unwrap().map(|s| s * cfg.scale());
    let mut live_rows = Vec::with_capacity(live);
    for i in 0..live {
        live_rows.push(scores.row(i)[..live].to_vec());
    }
    calibrate_threshold(&Matrix::from_rows(&live_rows).unwrap(), rate).unwrap()
}

/// A matrix whose rows beyond `live` are zero (the padded tail).
fn padded_matrix(rows: usize, cols: usize, live: usize, seed: u64, amp: f32) -> Matrix {
    let mut m = random_matrix(rows, cols, seed, amp);
    for i in live..rows {
        m.row_mut(i).fill(0.0);
    }
    m
}

fn bench(c: &mut Criterion) {
    let cfg = AttentionConfig::new(DIM);
    let q = random_matrix(SEQ, DIM, 1, 2.0);
    let k = random_matrix(SEQ, DIM, 2, 2.0);
    let v = random_matrix(SEQ, DIM, 3, 1.0);

    let mut group = c.benchmark_group("dense");
    group.sample_size(10);
    group.bench_function("fused", |b| {
        b.iter(|| black_box(dense_attention(&q, &k, &v, &cfg).unwrap()))
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(dense_attention_naive(&q, &k, &v, &cfg).unwrap()))
    });
    group.finish();

    // Paper defaults for BERT-B: 74.6% learned prune rate, 46% zero
    // padding (§VII); scores and the AV product only ever touch the
    // surviving live region.
    let live = (SEQ as f64 * (1.0 - 0.46)).round() as usize;
    let padding = PaddingMask::new(SEQ, live).unwrap();
    let qp = padded_matrix(SEQ, DIM, live, 4, 2.0);
    let kp = padded_matrix(SEQ, DIM, live, 5, 2.0);
    let vp = padded_matrix(SEQ, DIM, live, 6, 1.0);
    let th_paper = threshold_for(&qp, &kp, &cfg, 0.746, live);
    let mut ws = Workspace::with_capacity(SEQ, DIM);
    let mut group = c.benchmark_group("pruned");
    group.sample_size(10);
    group.bench_function("fused", |b| {
        b.iter(|| {
            let (out, decisions) =
                pruned_attention_with(&qp, &kp, &vp, &cfg, th_paper, Some(&padding), &mut ws)
                    .unwrap();
            black_box(&decisions);
            // Steady-state pipeline: finished outputs feed the pool.
            ws.recycle(out.scores);
            ws.recycle(out.probs);
            ws.recycle(out.output);
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            black_box(
                pruned_attention_naive(&qp, &kp, &vp, &cfg, th_paper, Some(&padding)).unwrap(),
            )
        })
    });
    // The fused AV stage scales with the keep rate (no padding here, so
    // the sweep isolates the prune-rate effect).
    let full = PaddingMask::full(SEQ);
    for rate in [0.5f64, 0.746, 0.9] {
        let th = threshold_for(&q, &k, &cfg, rate, SEQ);
        group.bench_function(&format!("fused-rate{:.0}", rate * 100.0), |b| {
            b.iter(|| {
                let (out, decisions) =
                    pruned_attention_with(&q, &k, &v, &cfg, th, Some(&full), &mut ws).unwrap();
                black_box(&decisions);
                ws.recycle(out.scores);
                ws.recycle(out.probs);
                ws.recycle(out.output);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
