//! Criterion bench regenerating the configuration artifacts: Tables I
//! and II, the Fig. 2 pruning map, the Fig. 14 area model and the
//! motivation ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = sprint_bench::bench_scale();
    println!("{}", sprint_core::experiments::tab1());
    println!("{}", sprint_core::experiments::tab2());
    println!("{}", sprint_core::experiments::fig14());
    println!(
        "{}",
        sprint_core::experiments::fig2(&scale).expect("fig2 runs")
    );
    println!("{}", sprint_core::experiments::extras(&scale));

    let mut group = c.benchmark_group("tables_and_maps");
    group.sample_size(10);
    group.bench_function("tab1_tab2_fig14", |b| {
        b.iter(|| {
            black_box(sprint_core::experiments::tab1());
            black_box(sprint_core::experiments::tab2());
            black_box(sprint_core::experiments::fig14());
        })
    });
    group.bench_function("fig2_map", |b| {
        b.iter(|| black_box(sprint_core::experiments::fig2(&scale).expect("fig2 runs")))
    });
    group.bench_function("extras", |b| {
        b.iter(|| black_box(sprint_core::experiments::extras(&scale)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
