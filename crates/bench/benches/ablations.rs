//! Criterion bench regenerating the design-choice ablations
//! (threshold margin, MLC depth, ADC choice, double buffering,
//! residency policy).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = sprint_bench::bench_scale();
    for r in sprint_core::ablations::all(&scale).expect("ablations run") {
        println!("{r}");
    }
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("counting_ablations", |b| {
        b.iter(|| {
            black_box(sprint_core::ablations::adc_design());
            black_box(sprint_core::ablations::double_buffering(&scale));
            black_box(sprint_core::ablations::residency_policy(&scale));
        })
    });
    group.bench_function("margin_sweep", |b| {
        b.iter(|| black_box(sprint_core::ablations::margin_sweep(&scale).expect("runs")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
