//! Criterion bench: autoregressive decode throughput.
//!
//! Generates 64 tokens over a BERT-B-shaped head at a 512-token final
//! history (s = 512, d = 64, the paper's design-point noise) two ways:
//!
//! * `session/*` — one [`sprint_engine::DecodeSession`]: the prefill
//!   is programmed once, each step appends one crossbar column and one
//!   cached-quantized K/V row, and only the survivors recompute;
//! * `reprogram_per_step/*` — the naive baseline: a fresh full-prefix
//!   `Engine::run_head` per token, reprogramming the crossbars and
//!   requantizing the whole history every step.
//!
//! Both decode the same token stream with the same seeds. The ratio of
//! the two medians is the decode speedup (the session side must hold
//! ≥5x tokens/sec at s = 512); run with `-- --bench-json` to record
//! both in `BENCH_report.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sprint_attention::Matrix;
use sprint_engine::{DecodeStep, Engine, HeadRequest, SessionRequest, SprintConfig};
use sprint_reram::NoiseModel;
use sprint_workloads::{HeadTrace, ModelConfig, TraceGenerator};

const TOTAL: usize = 512;
const DECODED: usize = 64;
const PREFILL: usize = TOTAL - DECODED;

fn stream() -> HeadTrace {
    let spec = ModelConfig::bert_base()
        .trace_spec()
        .with_seq_len(TOTAL)
        .with_padding(0.0);
    TraceGenerator::new(0xdec0).generate(&spec).expect("trace")
}

fn prefix(m: &Matrix, n: usize) -> Matrix {
    m.prefix_rows(n).expect("prefix")
}

fn bench(c: &mut Criterion) {
    let engine = Engine::builder(SprintConfig::medium())
        .noise(NoiseModel::default())
        .seed(7)
        .build()
        .expect("engine build");
    let trace = stream();
    let (pk, pv) = (prefix(trace.k(), PREFILL), prefix(trace.v(), PREFILL));

    let mut group = c.benchmark_group("decode_throughput");
    group.sample_size(10);

    group.bench_function(&format!("session/{DECODED}tok_s{TOTAL}"), |b| {
        b.iter(|| {
            let mut session = engine
                .open_session(
                    &SessionRequest::new(&pk, &pv, trace.config(), trace.threshold())
                        .with_head_id(1),
                )
                .expect("open session");
            let mut kept = 0usize;
            for t in PREFILL..TOTAL {
                let out = session
                    .step(&DecodeStep {
                        q: trace.q().row(t),
                        k: trace.k().row(t),
                        v: trace.v().row(t),
                    })
                    .expect("step");
                kept += out.decision.kept_count();
            }
            black_box(kept)
        })
    });

    group.bench_function(&format!("reprogram_per_step/{DECODED}tok_s{TOTAL}"), |b| {
        b.iter(|| {
            let mut kept = 0usize;
            for t in PREFILL..TOTAL {
                let q1 = prefix(trace.q(), 1);
                let mut q1 = q1;
                q1.row_mut(0).copy_from_slice(trace.q().row(t));
                let hist_k = prefix(trace.k(), t + 1);
                let hist_v = prefix(trace.v(), t + 1);
                let out = engine
                    .run_head(
                        &HeadRequest::new(&q1, &hist_k, &hist_v, trace.config(), trace.threshold())
                            .with_head_id(1),
                    )
                    .expect("head");
                kept += out.decisions[0].kept_count();
            }
            black_box(kept)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
