//! Criterion bench: autoregressive decode throughput.
//!
//! Generates 64 tokens over a BERT-B-shaped head at a 512-token final
//! history (s = 512, d = 64, the paper's design-point noise) two ways:
//!
//! * `session/*` — one [`sprint_engine::DecodeSession`]: the prefill
//!   is programmed once, each step appends one crossbar column and one
//!   cached-quantized K/V row, and only the survivors recompute;
//! * `reprogram_per_step/*` — the naive baseline: a fresh full-prefix
//!   `Engine::run_head` per token, reprogramming the crossbars and
//!   requantizing the whole history every step.
//!
//! Both decode the same token stream with the same seeds. The ratio of
//! the two medians is the decode speedup (the session side must hold
//! ≥5x tokens/sec at s = 512); run with `-- --bench-json` to record
//! both in `BENCH_report.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sprint_attention::{Matrix, PagePool};
use sprint_engine::{
    DecodeLoop, DecodeStep, DecodeTask, Engine, HeadRequest, SessionRequest, SprintConfig,
};
use sprint_reram::NoiseModel;
use sprint_workloads::{HeadTrace, ModelConfig, TraceGenerator};

const TOTAL: usize = 512;
const DECODED: usize = 64;
const PREFILL: usize = TOTAL - DECODED;

fn stream() -> HeadTrace {
    let spec = ModelConfig::bert_base()
        .trace_spec()
        .with_seq_len(TOTAL)
        .with_padding(0.0);
    TraceGenerator::new(0xdec0).generate(&spec).expect("trace")
}

fn prefix(m: &Matrix, n: usize) -> Matrix {
    m.prefix_rows(n).expect("prefix")
}

fn bench(c: &mut Criterion) {
    let engine = Engine::builder(SprintConfig::medium())
        .noise(NoiseModel::default())
        .seed(7)
        .build()
        .expect("engine build");
    let trace = stream();
    let (pk, pv) = (prefix(trace.k(), PREFILL), prefix(trace.v(), PREFILL));

    let mut group = c.benchmark_group("decode_throughput");
    group.sample_size(10);

    group.bench_function(&format!("session/{DECODED}tok_s{TOTAL}"), |b| {
        b.iter(|| {
            let mut session = engine
                .open_session(
                    &SessionRequest::new(&pk, &pv, trace.config(), trace.threshold())
                        .with_head_id(1),
                )
                .expect("open session");
            let mut kept = 0usize;
            for t in PREFILL..TOTAL {
                let out = session
                    .step(&DecodeStep {
                        q: trace.q().row(t),
                        k: trace.k().row(t),
                        v: trace.v().row(t),
                    })
                    .expect("step");
                kept += out.decision.kept_count();
            }
            black_box(kept)
        })
    });

    group.bench_function(&format!("reprogram_per_step/{DECODED}tok_s{TOTAL}"), |b| {
        b.iter(|| {
            let mut kept = 0usize;
            for t in PREFILL..TOTAL {
                let q1 = prefix(trace.q(), 1);
                let mut q1 = q1;
                q1.row_mut(0).copy_from_slice(trace.q().row(t));
                let hist_k = prefix(trace.k(), t + 1);
                let hist_v = prefix(trace.v(), t + 1);
                let out = engine
                    .run_head(
                        &HeadRequest::new(&q1, &hist_k, &hist_v, trace.config(), trace.threshold())
                            .with_head_id(1),
                    )
                    .expect("head");
                kept += out.decisions[0].kept_count();
            }
            black_box(kept)
        })
    });

    group.finish();
    churn(c);
}

/// Session-churn scenario: eight decode streams over a KV page pool
/// sized for two of them (N sessions, pool N/4). `run_churn` keeps
/// every stream alive by LRU-evicting cold sessions' pages and
/// rehydrating them from replayed history on their next turn. Recorded
/// against a never-evicted twin over an unbounded pool, plus
/// pseudo-entries with the run's exact churn counters — `report
/// --check` bounds the amortized rehydration overhead and requires
/// zero page-accounting drift.
const CHURN_SESSIONS: usize = 8;
const CHURN_SEQ: usize = 32;
const CHURN_PREFILL: usize = 16;
/// 4 tokens per page at BERT-B geometry (5 bytes × (64 + 64) per
/// token), so a full 32-token session holds 8 pages.
const CHURN_PAGE_BYTES: usize = 4 * 5 * 128;
/// Two full sessions' worth of pages: CHURN_SESSIONS / 4.
const CHURN_POOL_PAGES: usize = (CHURN_SESSIONS / 4) * (CHURN_SEQ / 4);

fn churn(c: &mut Criterion) {
    let tasks: Vec<DecodeTask> = (0..CHURN_SESSIONS)
        .map(|_| DecodeTask {
            spec: ModelConfig::bert_base()
                .trace_spec()
                .with_seq_len(CHURN_SEQ)
                .with_padding(0.0),
            prefill: CHURN_PREFILL,
            mode: None,
            threshold_spec: None,
        })
        .collect();
    let bounded = Engine::builder(SprintConfig::medium())
        .noise(NoiseModel::default())
        .seed(7)
        .kv_pool(PagePool::bounded(CHURN_PAGE_BYTES, CHURN_POOL_PAGES))
        .build()
        .expect("bounded engine build");
    let resident = Engine::builder(SprintConfig::medium())
        .noise(NoiseModel::default())
        .seed(7)
        .kv_pool(PagePool::unbounded(CHURN_PAGE_BYTES))
        .build()
        .expect("resident engine build");

    let mut group = c.benchmark_group("decode_throughput");
    group.sample_size(10);
    group.bench_function(
        &format!("churn/{CHURN_SESSIONS}sess_s{CHURN_SEQ}_pool{CHURN_POOL_PAGES}"),
        |b| {
            b.iter(|| {
                let report = DecodeLoop::new(&bounded)
                    .run_churn(&tasks, CHURN_SESSIONS)
                    .expect("churn run");
                black_box(report.tokens)
            })
        },
    );
    group.bench_function(
        &format!("churn_resident/{CHURN_SESSIONS}sess_s{CHURN_SEQ}"),
        |b| {
            b.iter(|| {
                let report = DecodeLoop::new(&resident)
                    .run_threads(1, &tasks)
                    .expect("resident run");
                black_box(report.tokens)
            })
        },
    );

    // One counted run for the accounting pseudo-entries (the "samples"
    // are counts, not nanoseconds, like host/available_parallelism).
    let report = DecodeLoop::new(&bounded)
        .run_churn(&tasks, CHURN_SESSIONS)
        .expect("counted churn run");
    group.record_samples("churn/evictions", &[u128::from(report.evictions)]);
    group.record_samples(
        "churn/rehydrated_tokens",
        &[u128::from(report.rehydrated_tokens)],
    );
    group.record_samples("churn/peak_pages", &[report.kv_pages_peak as u128]);
    group.record_samples("churn/pool_capacity_pages", &[CHURN_POOL_PAGES as u128]);
    group.record_samples(
        "churn/pages_leaked",
        &[bounded.kv_pool().pages_in_use() as u128],
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
