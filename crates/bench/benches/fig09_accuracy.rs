//! Criterion bench regenerating Fig. 9 (the four accuracy scenarios
//! across the six real-model proxies).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = sprint_bench::bench_scale();
    let once = sprint_core::experiments::fig9(&scale).expect("fig9 runs");
    println!("{once}");
    let mut group = c.benchmark_group("fig09_accuracy");
    group.sample_size(10);
    group.bench_function("fig9", |b| {
        b.iter(|| black_box(sprint_core::experiments::fig9(&scale).expect("fig9 runs")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
