//! Criterion bench: serving throughput of the unified engine.
//!
//! Measures heads/sec through `sprint_engine::Engine` in full SPRINT
//! mode: the single-head `run_head` path (amortized substrate reuse)
//! and `run_batch` at 1/2/4/8 workers over the same head set — the
//! scaling story of the batched front door. The `fresh/run_head` id
//! times the pre-engine shape (substrate rebuilt per head, via the
//! frozen reference pipeline) as the baseline the engine's state
//! reuse is measured against. Run with `-- --bench-json` to record
//! the timings in `BENCH_report.json`.
//!
//! Two kinds of scaling rows are recorded per worker count:
//! `run_batch/workers{N}` is honest wall-clock (meaningful only on a
//! host with ≥ N free cores), while `run_batch_critical_path/workers{N}`
//! is the busiest worker's thread-CPU time from the engine's
//! [`sprint_engine::BatchReport`] — the wall-clock the same
//! distribution would take with one free core per worker, so it shows
//! the scaling win (or a regression to flat) on *any* host, including
//! single-core CI. The `host/available_parallelism` pseudo-entry
//! records which regime the wall rows were measured in.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sprint_engine::{reference, Engine, ExecutionMode, HeadRequest, SprintConfig};
use sprint_reram::{NoiseModel, ThresholdSpec};
use sprint_workloads::{ModelConfig, TraceGenerator};

/// Heads per batch (per worker sweep).
const HEADS: usize = 8;
/// Sequence length of each head (functional pipeline: O(s²·d) work).
const SEQ: usize = 128;

fn bench(c: &mut Criterion) {
    let spec = ModelConfig::bert_base().trace_spec().with_seq_len(SEQ);
    let heads = TraceGenerator::new(0xbe)
        .generate_many(&spec, HEADS)
        .expect("trace generation");
    let engine = Engine::builder(SprintConfig::medium())
        .noise(NoiseModel::default())
        .mode(ExecutionMode::Sprint)
        .seed(7)
        // Enough slots for the widest sweep even on few-core machines
        // (the default is available_parallelism, which would silently
        // clamp the workers2/4/8 runs below).
        .worker_slots(8)
        .build()
        .expect("engine build");
    // Tag every request with its index so the single-head loop, the
    // fresh-substrate baseline and the batched fan-out all execute the
    // same per-head seeds (identical pruning workloads).
    let requests: Vec<HeadRequest> = heads
        .iter()
        .enumerate()
        .map(|(i, t)| HeadRequest::from_trace(t).with_head_id(i as u64))
        .collect();

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    // Steady-state single-head serving: substrate reused across calls.
    group.bench_function("run_head", |b| {
        b.iter(|| {
            for req in &requests {
                black_box(engine.run_head(req).unwrap());
            }
        })
    });
    // The pre-engine shape: every head rebuilds pruner + controller +
    // workspace (the frozen seed pipeline).
    group.bench_function("fresh/run_head", |b| {
        let spec = ThresholdSpec::default();
        b.iter(|| {
            for req in &requests {
                let seed = sprint_engine::derive_head_seed(
                    engine.seed(),
                    req.head_id().expect("requests are tagged"),
                );
                black_box(
                    reference::run_head_frozen(
                        req,
                        engine.config(),
                        engine.noise(),
                        seed,
                        &spec,
                        ExecutionMode::Sprint,
                    )
                    .unwrap(),
                );
            }
        })
    });
    // Batched fan-out at fixed worker counts (results are identical
    // across counts; only the timings change). Each count records the
    // wall-clock row and the critical-path row from the same samples.
    for workers in [1usize, 2, 4, 8] {
        let mut critical_path = Vec::with_capacity(10);
        group.bench_function(&format!("run_batch/workers{workers}"), |b| {
            b.iter(|| {
                let (responses, report) = engine.run_batch_report(workers, &requests).unwrap();
                critical_path.push(report.critical_path_ns());
                black_box(responses)
            })
        });
        group.record_samples(
            &format!("run_batch_critical_path/workers{workers}"),
            &critical_path,
        );
    }
    group.finish();

    // Pseudo-entry: the core count the wall-clock rows were measured
    // under (the "sample" is a count, not nanoseconds). `report
    // --check` gates the wall-ratio validation on this.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut host = c.benchmark_group("host");
    host.record_samples("available_parallelism", &[cores as u128]);
    host.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
