//! Criterion bench: model-level serving through `ModelServer`.
//!
//! Times one full forward pass (2 layers × 4 heads, s = 96, BERT-B
//! statistics) three ways: the hand-rolled per-head loop the figure
//! drivers used before the server existed (synthesize each trace,
//! `run_head` it, fold by hand), and `ModelServer::serve` at 1/2/4/8
//! workers — same seeds, bit-identical responses, only the timings
//! change. Run with `-- --bench-json` to record the timings in
//! `BENCH_report.json`.
//!
//! Each worker count records a wall-clock row (`serve/workers{N}`,
//! meaningful only with ≥ N free cores) and a critical-path row
//! (`serve_critical_path/workers{N}`) from
//! [`sprint_engine::ServeStats::critical_path_ns`]: serial stages
//! plus the busiest worker's thread-CPU time in each fan-out — the
//! pass's ideal wall-clock with one free core per worker, comparable
//! across worker counts on any host, including single-core CI.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sprint_engine::{
    Engine, ExecutionMode, HeadRequest, ModelProfile, ModelRequest, ModelServer, SprintConfig,
};
use sprint_reram::NoiseModel;
use sprint_workloads::{ModelConfig, TraceGenerator};

fn request() -> ModelRequest {
    ModelRequest::new(
        ModelProfile::from_model(&ModelConfig::bert_base())
            .with_layers(2)
            .with_heads(4)
            .with_seq_len(96),
    )
    .with_seed(0xbe)
}

fn bench(c: &mut Criterion) {
    let server = ModelServer::new(
        Engine::builder(SprintConfig::medium())
            .noise(NoiseModel::default())
            .mode(ExecutionMode::Sprint)
            .seed(7)
            // Enough slots for the widest sweep even on few-core
            // machines (the default would silently clamp workers4/8).
            .worker_slots(8)
            .build()
            .expect("engine build"),
    );
    let request = request();

    let mut group = c.benchmark_group("model_serving");
    group.sample_size(10);

    // The pre-server shape: hand-rolled layers × heads iteration —
    // synthesize every head trace, run it, fold the counters by hand.
    group.bench_function("manual/per_head_loop", |b| {
        b.iter(|| {
            let mut fetched = 0u64;
            let mut kept = 0usize;
            for plan in request.head_plan() {
                let trace = TraceGenerator::new(plan.trace_seed)
                    .generate(&plan.spec)
                    .expect("trace generation");
                let response = server
                    .engine()
                    .run_head(&HeadRequest::from_trace(&trace).with_head_id(plan.head_id))
                    .expect("head execution");
                fetched += response.memory_stats.fetched_vectors;
                kept += response
                    .decisions
                    .iter()
                    .map(|d| d.kept_count())
                    .sum::<usize>();
            }
            black_box((fetched, kept))
        })
    });

    // The server, at fixed worker counts (responses are identical
    // across counts; only the timings change). Each count records the
    // wall-clock row and the critical-path row from the same samples.
    for workers in [1usize, 2, 4, 8] {
        let mut critical_path = Vec::with_capacity(10);
        group.bench_function(&format!("serve/workers{workers}"), |b| {
            b.iter(|| {
                let (responses, stats) = server
                    .serve_many_report(workers, std::slice::from_ref(&request))
                    .expect("serve");
                critical_path.push(stats.critical_path_ns());
                black_box(responses)
            })
        });
        group.record_samples(
            &format!("serve_critical_path/workers{workers}"),
            &critical_path,
        );
    }
    group.finish();

    // Pseudo-entry: the core count the wall-clock rows were measured
    // under (the "sample" is a count, not nanoseconds). `report
    // --check` gates the wall-ratio validation on this.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut host = c.benchmark_group("host");
    host.record_samples("available_parallelism", &[cores as u128]);
    host.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
