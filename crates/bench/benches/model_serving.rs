//! Criterion bench: model-level serving through `ModelServer`.
//!
//! Times one full forward pass (2 layers × 4 heads, s = 96, BERT-B
//! statistics) three ways: the hand-rolled per-head loop the figure
//! drivers used before the server existed (synthesize each trace,
//! `run_head` it, fold by hand), and `ModelServer::serve` at 1/2/4
//! workers — same seeds, bit-identical responses, only the wall-clock
//! changes. Run with `-- --bench-json` to record the timings in
//! `BENCH_report.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sprint_engine::{
    Engine, ExecutionMode, HeadRequest, ModelProfile, ModelRequest, ModelServer, SprintConfig,
};
use sprint_reram::NoiseModel;
use sprint_workloads::{ModelConfig, TraceGenerator};

fn request() -> ModelRequest {
    ModelRequest::new(
        ModelProfile::from_model(&ModelConfig::bert_base())
            .with_layers(2)
            .with_heads(4)
            .with_seq_len(96),
    )
    .with_seed(0xbe)
}

fn bench(c: &mut Criterion) {
    let server = ModelServer::new(
        Engine::builder(SprintConfig::medium())
            .noise(NoiseModel::default())
            .mode(ExecutionMode::Sprint)
            .seed(7)
            // Enough slots for the widest sweep even on few-core
            // machines (the default would silently clamp workers4).
            .worker_slots(4)
            .build()
            .expect("engine build"),
    );
    let request = request();

    let mut group = c.benchmark_group("model_serving");
    group.sample_size(10);

    // The pre-server shape: hand-rolled layers × heads iteration —
    // synthesize every head trace, run it, fold the counters by hand.
    group.bench_function("manual/per_head_loop", |b| {
        b.iter(|| {
            let mut fetched = 0u64;
            let mut kept = 0usize;
            for plan in request.head_plan() {
                let trace = TraceGenerator::new(plan.trace_seed)
                    .generate(&plan.spec)
                    .expect("trace generation");
                let response = server
                    .engine()
                    .run_head(&HeadRequest::from_trace(&trace).with_head_id(plan.head_id))
                    .expect("head execution");
                fetched += response.memory_stats.fetched_vectors;
                kept += response
                    .decisions
                    .iter()
                    .map(|d| d.kept_count())
                    .sum::<usize>();
            }
            black_box((fetched, kept))
        })
    });

    // The server, at fixed worker counts (responses are identical
    // across counts; only wall-clock changes).
    for workers in [1usize, 2, 4] {
        group.bench_function(&format!("serve/workers{workers}"), |b| {
            b.iter(|| black_box(server.serve_threads(workers, &request).expect("serve")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
