//! Criterion bench: the SIMD kernel tier vs the scalar reference tier.
//!
//! Times the same fused kernels under a forced-`Scalar` and a
//! forced-`Avx2` workspace (the per-workspace knob the engine's
//! `simd_tier` builder drives), so the recorded ratio is exactly the
//! dispatch layer's win: `simd/scalar/dense-fused` vs
//! `simd/avx2/dense-fused`, the paper-default pruned head, and the
//! quantized single-query decode path over a paged KV history. The
//! `host/simd_avx2` pseudo-entry records whether the AVX2 rows were
//! actually measured (0 on hosts without AVX2+FMA, where the rows are
//! omitted and `report --check` skips the speedup floors). Run with
//! `-- --bench-json` to record the timings in `BENCH_report.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sprint_attention::{
    calibrate_threshold, dense_attention_with, pruned_attention_with,
    quantized_attention_decode_with, AttentionConfig, KvCache, Matrix, PaddingMask, SimdTier,
    Workspace,
};

const SEQ: usize = 512;
const DIM: usize = 64;

/// Deterministic pseudo-random matrix (no rand dependency in benches).
fn random_matrix(rows: usize, cols: usize, seed: u64, amp: f32) -> Matrix {
    let mut x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(0x2545f4914f6cdd1d);
    let mut next = move || {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 29;
        amp * (((x >> 40) as f32 / 16777216.0) - 0.5)
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
}

/// Threshold that prunes `rate` of this head's scores.
fn threshold_for(q: &Matrix, k: &Matrix, cfg: &AttentionConfig, rate: f64) -> f32 {
    let scores = q.matmul_transposed(k).unwrap().map(|s| s * cfg.scale());
    calibrate_threshold(&scores, rate).unwrap()
}

fn bench(c: &mut Criterion) {
    let cfg = AttentionConfig::new(DIM);
    let q = random_matrix(SEQ, DIM, 1, 2.0);
    let k = random_matrix(SEQ, DIM, 2, 2.0);
    let v = random_matrix(SEQ, DIM, 3, 1.0);
    let th_paper = threshold_for(&q, &k, &cfg, 0.746);
    let full = PaddingMask::full(SEQ);
    let q1 = random_matrix(1, DIM, 4, 2.0);
    let kv = KvCache::new(&k, &v).unwrap();

    let tiers: &[SimdTier] = if sprint_attention::avx2_available() {
        &[SimdTier::Scalar, SimdTier::Avx2]
    } else {
        &[SimdTier::Scalar]
    };

    let mut group = c.benchmark_group("simd");
    group.sample_size(10);
    for &tier in tiers {
        let mut ws = Workspace::with_capacity(SEQ, DIM);
        ws.set_simd_tier(tier);
        group.bench_function(&format!("{tier}/dense-fused"), |b| {
            b.iter(|| {
                let out = dense_attention_with(&q, &k, &v, &cfg, &mut ws).unwrap();
                black_box(&out.output);
                ws.recycle(out.scores);
                ws.recycle(out.probs);
                ws.recycle(out.output);
            })
        });
        group.bench_function(&format!("{tier}/pruned-fused"), |b| {
            b.iter(|| {
                let (out, decisions) =
                    pruned_attention_with(&q, &k, &v, &cfg, th_paper, Some(&full), &mut ws)
                        .unwrap();
                black_box(&decisions);
                ws.recycle(out.scores);
                ws.recycle(out.probs);
                ws.recycle(out.output);
            })
        });
        group.bench_function(&format!("{tier}/quantized-decode"), |b| {
            b.iter(|| {
                black_box(quantized_attention_decode_with(&q1, &kv, &cfg, None, &mut ws).unwrap())
            })
        });
    }
    group.finish();

    // Pseudo-entry: whether the AVX2 rows above were measured on real
    // AVX2+FMA hardware. `report --check` gates the simd speedup
    // floors on this, the same convention as
    // `host/available_parallelism` for the wall-clock scaling rows.
    let mut host = c.benchmark_group("host");
    host.record_samples(
        "simd_avx2",
        &[u128::from(sprint_attention::avx2_available())],
    );
    host.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
