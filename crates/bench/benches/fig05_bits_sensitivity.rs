//! Criterion bench regenerating Fig. 5 (accuracy vs in-memory score
//! bits). Runs the full functional pipeline — analog thresholding with
//! b-bit quantized comparison plus 8-bit recompute — per point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = sprint_bench::bench_scale();
    let once = sprint_core::experiments::fig5(&scale).expect("fig5 runs");
    println!("{once}");
    let mut group = c.benchmark_group("fig05_bits_sensitivity");
    group.sample_size(10);
    group.bench_function("fig5", |b| {
        b.iter(|| black_box(sprint_core::experiments::fig5(&scale).expect("fig5 runs")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
