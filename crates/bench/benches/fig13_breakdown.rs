//! Criterion bench regenerating Fig. 13.
//!
//! The measured closure is the full experiment driver, so the bench
//! doubles as a regression harness for the artifact itself: the rows
//! are printed once per run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = sprint_bench::bench_scale();
    let once = sprint_core::experiments::fig13(&scale);
    println!("{once}");
    let mut group = c.benchmark_group("fig13_breakdown");
    group.sample_size(10);
    group.bench_function("fig13(&scale)", |b| {
        b.iter(|| black_box(sprint_core::experiments::fig13(&scale)))
    });
    group.finish();
    let _ = scale;
}

criterion_group!(benches, bench);
criterion_main!(benches);
