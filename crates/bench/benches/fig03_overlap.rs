//! Criterion bench regenerating Fig. 3 (observed vs random overlap).
//!
//! The fallible accuracy-class drivers run once for the printed rows
//! and are then measured end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = sprint_bench::bench_scale();
    let once = sprint_core::experiments::fig3(&scale).expect("fig3 runs");
    println!("{once}");
    let mut group = c.benchmark_group("fig03_overlap");
    group.sample_size(10);
    group.bench_function("fig3", |b| {
        b.iter(|| black_box(sprint_core::experiments::fig3(&scale).expect("fig3 runs")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
