//! Shared helpers for the SPRINT benchmark harness.
//!
//! The criterion benches (one per paper table/figure) and the `report`
//! binary both drive the experiment drivers in
//! [`sprint_core::experiments`]; this crate only holds the scale
//! presets they share.

use sprint_core::experiments::Scale;

/// The scale benches run at: large enough to show the paper's shapes,
/// small enough for criterion's repeated sampling.
pub fn bench_scale() -> Scale {
    Scale {
        seq_cap: 512,
        accuracy_seq: 96,
        seed: 0xbe4c,
    }
}

/// The full paper scale used by the report binary.
pub fn report_scale() -> Scale {
    Scale::full()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(bench_scale().seq_cap < report_scale().seq_cap);
    }
}
