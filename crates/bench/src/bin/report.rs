//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run -p sprint-bench --bin report --release            # everything
//! cargo run -p sprint-bench --bin report --release fig11     # one artifact
//! cargo run -p sprint-bench --bin report --release -- --json # machine readable
//! cargo run -p sprint-bench --bin report --release -- --quick
//! ```

use sprint_core::experiments::{self, Scale};
use sprint_core::ExperimentResult;

fn run_one(id: &str, scale: &Scale) -> Result<Vec<ExperimentResult>, Box<dyn std::error::Error>> {
    Ok(match id {
        "tab1" => vec![experiments::tab1()],
        "tab2" => vec![experiments::tab2()],
        "tab3" => vec![experiments::tab3(scale)],
        "fig1" => vec![experiments::fig1(scale)],
        "fig2" => vec![experiments::fig2(scale)?],
        "fig3" => vec![experiments::fig3(scale)?],
        "fig5" => vec![experiments::fig5(scale)?],
        "fig8" => vec![experiments::fig8(scale)],
        "fig9" => vec![experiments::fig9(scale)?],
        "fig10" => vec![experiments::fig10(scale)],
        "fig11" => vec![experiments::fig11(scale)],
        "fig12" => vec![experiments::fig12(scale)],
        "fig13" => vec![experiments::fig13(scale)],
        "fig14" => vec![experiments::fig14()],
        "ffn" => vec![experiments::ffn_table(scale)],
        "extras" => vec![experiments::extras(scale)],
        "ablations" => sprint_core::ablations::all(scale)?,
        "all" => experiments::all(scale)?,
        other => return Err(format!("unknown experiment id: {other}").into()),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let scale = if quick { Scale::quick() } else { Scale::full() };
    let mut results = Vec::new();
    if ids.is_empty() {
        results.extend(run_one("all", &scale)?);
    } else {
        for id in ids {
            results.extend(run_one(id, &scale)?);
        }
    }

    if json {
        println!("{}", sprint_core::results_to_json(&results));
    } else {
        for r in &results {
            println!("{r}");
            println!();
        }
    }
    Ok(())
}
