//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run -p sprint-bench --bin report --release            # everything
//! cargo run -p sprint-bench --bin report --release fig11     # one artifact
//! cargo run -p sprint-bench --bin report --release -- --json # machine readable
//! cargo run -p sprint-bench --bin report --release -- --quick
//! cargo run -p sprint-bench --bin report -- --check          # validate BENCH_report.json
//! ```
//!
//! `--json` additionally records the results in the `"experiments"`
//! section of `BENCH_report.json` at the repo root (preserving the
//! `"benches"` section written by `cargo bench -- --bench-json`), so
//! the perf trajectory is versioned. `--check` validates that file:
//! it must exist, parse, and hold non-empty entries with finite
//! timings — the CI bench-smoke job runs it after a bench pass.

use sprint_core::experiments::{self, Scale};
use sprint_core::ExperimentResult;

fn run_one(id: &str, scale: &Scale) -> Result<Vec<ExperimentResult>, Box<dyn std::error::Error>> {
    Ok(match id {
        "tab1" => vec![experiments::tab1()],
        "tab2" => vec![experiments::tab2()],
        "tab3" => vec![experiments::tab3(scale)],
        "fig1" => vec![experiments::fig1(scale)],
        "fig2" => vec![experiments::fig2(scale)?],
        "fig3" => vec![experiments::fig3(scale)?],
        "fig5" => vec![experiments::fig5(scale)?],
        "fig8" => vec![experiments::fig8(scale)],
        "fig9" => vec![experiments::fig9(scale)?],
        "fig10" => vec![experiments::fig10(scale)],
        "fig11" => vec![experiments::fig11(scale)],
        "fig12" => vec![experiments::fig12(scale)],
        "fig13" => vec![experiments::fig13(scale)],
        "fig14" => vec![experiments::fig14()],
        "ffn" => vec![experiments::ffn_table(scale)],
        "extras" => vec![experiments::extras(scale)],
        "fault_sweep" => vec![experiments::fault_sweep(scale)?],
        "ablations" => sprint_core::ablations::all(scale)?,
        "all" => experiments::all(scale)?,
        other => return Err(format!("unknown experiment id: {other}").into()),
    })
}

/// The repo-root report file both writers share.
fn report_path() -> std::path::PathBuf {
    criterion::report::repo_root().join("BENCH_report.json")
}

/// Replaces the `"experiments"` section of `BENCH_report.json`,
/// preserving any `"benches"` section in place.
fn write_experiments_section(results_json: &str) -> std::io::Result<std::path::PathBuf> {
    use criterion::report::{raw_section, render_report};
    let path = report_path();
    let mut sections = vec![("experiments", results_json.to_string())];
    if let Some(existing) = std::fs::read_to_string(&path)
        .ok()
        .as_deref()
        .and_then(|text| raw_section(text, "benches"))
    {
        sections.push(("benches", existing));
    }
    std::fs::write(&path, render_report(&sections))?;
    Ok(path)
}

/// Validates a bench-report file (the repo-root `BENCH_report.json` by
/// default, or an explicit path — CI points this at the file a fresh
/// `--bench-json` run just emitted, so a silently-broken emission
/// cannot hide behind the committed snapshot): present, parseable, and
/// every bench entry non-empty with finite (parseable, positive-sample)
/// numbers.
fn check_report(explicit: Option<&str>) -> Result<(), String> {
    use criterion::report::{array_items, raw_section, string_field, u128_field};
    let path = explicit.map_or_else(report_path, std::path::PathBuf::from);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let benches = raw_section(&text, "benches")
        .ok_or_else(|| format!("{}: no \"benches\" section", path.display()))?;
    let items = array_items(&benches);
    if items.is_empty() {
        return Err(format!("{}: \"benches\" is empty", path.display()));
    }
    for (n, item) in items.iter().enumerate() {
        let id = string_field(item, "id")
            .filter(|id| !id.is_empty())
            .ok_or_else(|| format!("bench entry {n}: missing or empty id"))?;
        for field in ["median_ns", "min_ns", "max_ns"] {
            u128_field(item, field)
                .ok_or_else(|| format!("bench '{id}': missing or non-finite {field}"))?;
        }
        let samples =
            u128_field(item, "samples").ok_or_else(|| format!("bench '{id}': missing samples"))?;
        if samples == 0 {
            return Err(format!("bench '{id}': zero samples"));
        }
    }
    check_scaling(&items)?;
    check_simd(&items)?;
    check_fault_sweep(&text)?;
    check_server_stress(&items)?;
    check_decode_churn(&items)?;
    println!(
        "{} ok: {} bench entr{} with finite timings{}",
        path.display(),
        items.len(),
        if items.len() == 1 { "y" } else { "ies" },
        if raw_section(&text, "experiments").is_some() {
            ", experiments section present"
        } else {
            ""
        },
    );
    Ok(())
}

/// How much of the 1-worker time the 4-worker row may take before the
/// check fails: 0.6× (a ≥1.67× speedup). Generous against the ideal
/// 0.25× so fan-out overhead and noisy medians never flake the check,
/// while a regression to flat scaling (ratio ≈ 1.0) always fails.
const SCALING_RATIO_MAX: f64 = 0.6;

/// Validates the worker-scaling ratios recorded by the engine and
/// model-serving benches, so a regression to flat scaling fails
/// bench-smoke instead of going unnoticed.
///
/// Two kinds of rows, checked differently:
///
/// * `*_critical_path/workers{N}` rows are per-worker thread-CPU
///   critical paths — host-independent, so whenever the workers1 and
///   workers4 rows are both present their ratio must clear
///   [`SCALING_RATIO_MAX`] unconditionally.
/// * wall-clock rows (`engine/run_batch/workers{N}`,
///   `model_serving/serve/workers{N}`) only show speedup with free
///   cores, so their ratio is enforced only when the report's
///   `host/available_parallelism` entry records ≥ 4 cores; otherwise
///   the check notes the skip.
///
/// Pairs whose rows are absent are skipped with a note — CI's
/// bench-smoke emits a fresh file from a subset of benches, so absence
/// is normal there.
fn check_scaling(items: &[String]) -> Result<(), String> {
    use criterion::report::{string_field, u128_field};
    let median_of = |id: &str| -> Option<u128> {
        items
            .iter()
            .find(|item| string_field(item, "id").as_deref() == Some(id))
            .and_then(|item| u128_field(item, "median_ns"))
    };
    let cores = median_of("host/available_parallelism");
    let wall_enforced = cores.is_some_and(|c| c >= 4);
    let pairs = [
        ("engine/run_batch_critical_path", true),
        ("model_serving/serve_critical_path", true),
        ("engine/run_batch", false),
        ("model_serving/serve", false),
    ];
    for (prefix, host_independent) in pairs {
        let (one, four) = (
            median_of(&format!("{prefix}/workers1")),
            median_of(&format!("{prefix}/workers4")),
        );
        let (Some(one), Some(four)) = (one, four) else {
            println!("scaling: {prefix}/workers1 vs workers4 not in this report (skipped)");
            continue;
        };
        if !host_independent && !wall_enforced {
            println!(
                "scaling: {prefix} wall ratio {:.2} not enforced (host recorded {} core(s))",
                four as f64 / one.max(1) as f64,
                cores.map_or_else(|| "no".to_string(), |c| c.to_string()),
            );
            continue;
        }
        let ratio = four as f64 / one.max(1) as f64;
        if ratio > SCALING_RATIO_MAX {
            return Err(format!(
                "{prefix}: workers4 median is {ratio:.2}x workers1 \
                 (limit {SCALING_RATIO_MAX}) — parallel scaling regressed to flat"
            ));
        }
        println!("scaling: {prefix} workers4/workers1 ratio {ratio:.2} ok");
    }
    Ok(())
}

/// Minimum scalar-over-AVX2 speedup the `simd_kernels` fused rows must
/// clear on AVX2 hosts (the ISSUE 10 tentpole floor). Measured
/// medians sit around 2.2×; a regression of the vector lanes to
/// scalar-equivalent speed (ratio ≈ 1.0) always fails.
const SIMD_SPEEDUP_MIN: f64 = 2.0;

/// How much slower than the dense fused kernel the 50 %-keep pruned
/// kernel may run: the low-sparsity crossover (ISSUE 10 satellite)
/// streams every key below the sparse-walk break-even, so rate50 must
/// track dense instead of paying the skip walk's branchy tax.
const CROSSOVER_RATIO_MAX: f64 = 1.05;

/// Validates the SIMD-tier rows of `simd_kernels` plus the
/// low-sparsity crossover floor:
///
/// * On hosts whose report carries `host/simd_avx2` = 1 (the bench
///   records runtime AVX2+FMA detection as a 0/1 pseudo-row), the
///   forced-scalar over forced-AVX2 ratio of the `dense-fused` and
///   `pruned-fused` rows must clear [`SIMD_SPEEDUP_MIN`]. Hosts
///   without AVX2 (or reports without the pseudo-row) skip with a
///   note — the tiers are identical there by construction.
/// * Whenever `pruned/fused-rate50` and `dense/fused` are both
///   present, rate50 must stay within [`CROSSOVER_RATIO_MAX`] of
///   dense — tier-independent, so never gated.
///
/// Absent rows are skipped with a note (CI's bench-smoke emits from a
/// subset of benches).
fn check_simd(items: &[String]) -> Result<(), String> {
    use criterion::report::{string_field, u128_field};
    let median_of = |id: &str| -> Option<u128> {
        items
            .iter()
            .find(|item| string_field(item, "id").as_deref() == Some(id))
            .and_then(|item| u128_field(item, "median_ns"))
    };
    match median_of("host/simd_avx2") {
        None => println!("simd: no host/simd_avx2 row (speedup floors skipped)"),
        Some(0) => println!("simd: host has no AVX2+FMA (speedup floors skipped)"),
        Some(_) => {
            for kernel in ["dense-fused", "pruned-fused"] {
                let (scalar, avx2) = (
                    median_of(&format!("simd/scalar/{kernel}")),
                    median_of(&format!("simd/avx2/{kernel}")),
                );
                let (Some(scalar), Some(avx2)) = (scalar, avx2) else {
                    println!("simd: {kernel} tier rows not in this report (skipped)");
                    continue;
                };
                let speedup = scalar as f64 / avx2.max(1) as f64;
                if speedup < SIMD_SPEEDUP_MIN {
                    return Err(format!(
                        "simd/{kernel}: avx2 tier is only {speedup:.2}x the scalar tier \
                         (floor {SIMD_SPEEDUP_MIN}x) — the vector lanes regressed"
                    ));
                }
                println!("simd: {kernel} scalar/avx2 speedup {speedup:.2}x ok");
            }
        }
    }
    let (rate50, dense) = (median_of("pruned/fused-rate50"), median_of("dense/fused"));
    if let (Some(rate50), Some(dense)) = (rate50, dense) {
        let ratio = rate50 as f64 / dense.max(1) as f64;
        if ratio > CROSSOVER_RATIO_MAX {
            return Err(format!(
                "pruned/fused-rate50 is {ratio:.2}x dense/fused \
                 (limit {CROSSOVER_RATIO_MAX}) — the low-sparsity crossover regressed"
            ));
        }
        println!("simd: rate50/dense crossover ratio {ratio:.2} ok");
    } else {
        println!("simd: rate50 vs dense rows not in this report (crossover check skipped)");
    }
    Ok(())
}

/// Validates the fault_sweep experiment rows whenever the report
/// carries an experiments section (CI's fresh bench emission does not
/// — the check notes the skip there):
///
/// * the digital columns (Baseline, Runtime Pruning) never touch the
///   analog substrate, so their cells must be literally identical
///   across fault rates;
/// * SPRINT's accuracy must not increase as the rate grows, and must
///   end strictly below the fault-free row (the fault sets nest, so
///   degradation is monotone by construction);
/// * the detected-fault count must be non-decreasing.
fn check_fault_sweep(text: &str) -> Result<(), String> {
    use criterion::report::{array_items, raw_section, string_field};
    let Some(experiments) = raw_section(text, "experiments") else {
        println!("fault_sweep: no experiments section in this report (skipped)");
        return Ok(());
    };
    let Some(sweep) = array_items(&experiments)
        .into_iter()
        .find(|item| string_field(item, "id").as_deref() == Some("fault_sweep"))
    else {
        println!("fault_sweep: not among this report's experiments (skipped)");
        return Ok(());
    };
    let rows: Vec<Vec<String>> = array_items(&raw_section(&sweep, "rows").unwrap_or_default())
        .iter()
        .map(|row| {
            array_items(row)
                .into_iter()
                .map(|cell| cell.trim_matches('"').to_string())
                .collect()
        })
        .collect();
    if rows.len() < 2 || rows.iter().any(|row| row.len() < 6) {
        return Err("fault_sweep: needs at least two rows of six columns".into());
    }
    let num = |row: &[String], col: usize| -> Result<f64, String> {
        row[col]
            .parse::<f64>()
            .map_err(|_| format!("fault_sweep: cell {:?} is not a number", row[col]))
    };
    for row in &rows[1..] {
        for col in [1usize, 2] {
            if row[col] != rows[0][col] {
                return Err(format!(
                    "fault_sweep: digital column {col} drifts with the fault rate \
                     ({} vs {}) — these modes must be fault-immune",
                    row[col], rows[0][col]
                ));
            }
        }
    }
    for pair in rows.windows(2) {
        if num(&pair[1], 4)? > num(&pair[0], 4)? + 1e-9 {
            return Err(format!(
                "fault_sweep: SPRINT accuracy rises with the fault rate ({} -> {})",
                pair[0][4], pair[1][4]
            ));
        }
        if num(&pair[1], 5)? < num(&pair[0], 5)? {
            return Err(format!(
                "fault_sweep: detected fault count shrinks as the rate grows ({} -> {})",
                pair[0][5], pair[1][5]
            ));
        }
    }
    let (first, last) = (
        rows.first().expect("checked"),
        rows.last().expect("checked"),
    );
    if num(last, 4)? >= num(first, 4)? {
        return Err(format!(
            "fault_sweep: SPRINT shows no degradation at the highest rate ({} vs {})",
            last[4], first[4]
        ));
    }
    println!(
        "fault_sweep: {} rows ok (digital columns flat, SPRINT degradation monotone)",
        rows.len()
    );
    Ok(())
}

/// Minimum sustained QPS the capacity phase of the HTTP stress
/// harness must record. Deliberately modest: the harness runs a tiny
/// request shape and must hold this floor on a single-core host.
const SERVER_MIN_QPS: u128 = 5;

/// Shed-rate band (parts per million of offered requests) for the
/// overload phase: the server must actually shed under ~2x-capacity
/// load (floor), but never collapse into rejecting nearly everything
/// (ceiling).
const SERVER_SHED_PPM: (u128, u128) = (1_000, 950_000);

/// Overload p99 latency ceiling (ns) for requests that *were* served:
/// bounded queues must keep the tail bounded even while shedding.
const SERVER_OVERLOAD_P99_MAX_NS: u128 = 2_000_000_000;

/// Validates the `server/...` rows the HTTP stress harness
/// (`cargo run -p sprint-server --bin stress_test`) records:
///
/// * `server/stress/sustained_qps` ≥ [`SERVER_MIN_QPS`];
/// * `server/overload/shed_rate_ppm` inside [`SERVER_SHED_PPM`] —
///   admission control engaged, but the server kept serving;
/// * `server/overload/p99_ns` ≤ [`SERVER_OVERLOAD_P99_MAX_NS`].
///
/// Rows that are absent are skipped with a note — CI's fresh bench
/// emission does not run the stress harness.
fn check_server_stress(items: &[String]) -> Result<(), String> {
    use criterion::report::{string_field, u128_field};
    let median_of = |id: &str| -> Option<u128> {
        items
            .iter()
            .find(|item| string_field(item, "id").as_deref() == Some(id))
            .and_then(|item| u128_field(item, "median_ns"))
    };
    match median_of("server/stress/sustained_qps") {
        None => println!("server: stress rows not in this report (skipped)"),
        Some(qps) if qps < SERVER_MIN_QPS => {
            return Err(format!(
                "server/stress/sustained_qps: {qps} QPS is below the {SERVER_MIN_QPS} floor"
            ));
        }
        Some(qps) => println!("server: sustained {qps} QPS ok (floor {SERVER_MIN_QPS})"),
    }
    match median_of("server/overload/shed_rate_ppm") {
        None => println!("server: overload rows not in this report (skipped)"),
        Some(ppm) if ppm < SERVER_SHED_PPM.0 => {
            return Err(format!(
                "server/overload/shed_rate_ppm: {ppm} ppm — the server never shed \
                 under 2x-capacity load; admission control is not engaging"
            ));
        }
        Some(ppm) if ppm > SERVER_SHED_PPM.1 => {
            return Err(format!(
                "server/overload/shed_rate_ppm: {ppm} ppm — the server rejected \
                 nearly everything under overload"
            ));
        }
        Some(ppm) => println!(
            "server: overload shed rate {ppm} ppm inside [{}, {}]",
            SERVER_SHED_PPM.0, SERVER_SHED_PPM.1
        ),
    }
    match median_of("server/overload/p99_ns") {
        None => {}
        Some(p99) if p99 > SERVER_OVERLOAD_P99_MAX_NS => {
            return Err(format!(
                "server/overload/p99_ns: {p99} ns exceeds the \
                 {SERVER_OVERLOAD_P99_MAX_NS} ns ceiling — bounded queues \
                 are no longer bounding the tail"
            ));
        }
        Some(p99) => println!(
            "server: overload p99 {:.1} ms under the {} ms ceiling",
            p99 as f64 / 1e6,
            SERVER_OVERLOAD_P99_MAX_NS / 1_000_000
        ),
    }
    Ok(())
}

/// Ceiling on the churned-run / never-evicted-run wall ratio. Each
/// rehydration replays the session's whole history (a full reprogram +
/// requantize), so churn over a quarter-size pool is legitimately
/// slower than staying resident — but by a bounded, amortized factor.
/// A regression that replays per *step* instead of per *rehydration*
/// (or re-replays already-resident sessions) blows well past this.
const CHURN_OVERHEAD_MAX: f64 = 50.0;

/// Validates the `decode_throughput/churn/...` rows the session-churn
/// scenario records (eight sessions over a pool sized for two):
///
/// * `churn/pages_leaked` must be exactly zero — every page a churned
///   run ever allocated went back to the pool (zero accounting drift);
/// * `churn/evictions` and `churn/rehydrated_tokens` must be non-zero —
///   the scenario actually exercised the evict/rehydrate path;
/// * `churn/peak_pages` must not exceed `churn/pool_capacity_pages` —
///   a bounded pool stayed bounded;
/// * the churned wall median must stay within [`CHURN_OVERHEAD_MAX`]×
///   the never-evicted twin's (`churn_resident/...`) — rehydration's
///   amortized cost is bounded.
///
/// Absent rows are skipped with a note — other bench groups' emissions
/// don't carry them.
fn check_decode_churn(items: &[String]) -> Result<(), String> {
    use criterion::report::{string_field, u128_field};
    let median_of = |id: &str| -> Option<u128> {
        items
            .iter()
            .find(|item| string_field(item, "id").as_deref() == Some(id))
            .and_then(|item| u128_field(item, "median_ns"))
    };
    let churn_wall = items.iter().find_map(|item| {
        let id = string_field(item, "id")?;
        if id.starts_with("decode_throughput/churn/") && id.contains("sess_") {
            u128_field(item, "median_ns")
        } else {
            None
        }
    });
    let Some(churn_wall) = churn_wall else {
        println!("decode churn: rows not in this report (skipped)");
        return Ok(());
    };
    match median_of("decode_throughput/churn/pages_leaked") {
        Some(0) => println!("decode churn: zero page-accounting drift"),
        Some(n) => {
            return Err(format!(
                "decode_throughput/churn/pages_leaked: {n} page(s) never \
                 returned to the pool — KV page accounting drifted"
            ));
        }
        None => {
            return Err(
                "decode churn: scenario row present but churn/pages_leaked missing".to_string(),
            );
        }
    }
    for (id, what) in [
        ("decode_throughput/churn/evictions", "eviction"),
        (
            "decode_throughput/churn/rehydrated_tokens",
            "rehydrated token",
        ),
    ] {
        match median_of(id) {
            Some(0) => {
                return Err(format!(
                    "{id}: zero {what}s — the churn scenario never left residency; \
                     the pool is no longer applying pressure"
                ));
            }
            Some(n) => println!("decode churn: {n} {what}s"),
            None => {
                return Err(format!(
                    "decode churn: scenario row present but {id} missing"
                ))
            }
        }
    }
    if let (Some(peak), Some(cap)) = (
        median_of("decode_throughput/churn/peak_pages"),
        median_of("decode_throughput/churn/pool_capacity_pages"),
    ) {
        if peak > cap {
            return Err(format!(
                "decode_throughput/churn/peak_pages: {peak} exceeds the \
                 {cap}-page pool capacity — the bound was not enforced"
            ));
        }
        println!("decode churn: peak {peak} pages within the {cap}-page pool");
    }
    let resident = items.iter().find_map(|item| {
        let id = string_field(item, "id")?;
        if id.starts_with("decode_throughput/churn_resident/") {
            u128_field(item, "median_ns")
        } else {
            None
        }
    });
    if let Some(resident) = resident {
        let ratio = churn_wall as f64 / resident.max(1) as f64;
        if ratio > CHURN_OVERHEAD_MAX {
            return Err(format!(
                "decode churn: churned run is {ratio:.1}x the never-evicted twin \
                 (limit {CHURN_OVERHEAD_MAX}) — rehydration cost is no longer amortized"
            ));
        }
        println!(
            "decode churn: wall overhead {ratio:.2}x the never-evicted twin \
             (limit {CHURN_OVERHEAD_MAX})"
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let explicit = args.get(pos + 1).filter(|a| !a.starts_with("--"));
        return check_report(explicit.map(String::as_str)).map_err(Into::into);
    }
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let scale = if quick { Scale::quick() } else { Scale::full() };
    let mut results = Vec::new();
    if ids.is_empty() {
        results.extend(run_one("all", &scale)?);
    } else {
        for id in &ids {
            results.extend(run_one(id, &scale)?);
        }
    }

    if json {
        let rendered = sprint_core::results_to_json(&results);
        println!("{rendered}");
        // Only a full-scale, unfiltered run may update the versioned
        // snapshot — partial or reduced-scale JSON stays on stdout.
        if quick || !ids.is_empty() {
            eprintln!("partial/quick run: BENCH_report.json left untouched");
        } else {
            let path = write_experiments_section(&rendered)?;
            eprintln!("wrote experiments section to {}", path.display());
        }
    } else {
        for r in &results {
            println!("{r}");
            println!();
        }
    }
    Ok(())
}
