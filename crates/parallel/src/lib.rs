//! Scoped-thread fan-out with deterministic result ordering.
//!
//! The experiment drivers, profile generators and trace synthesizers of
//! the SPRINT reproduction are embarrassingly parallel: every item is
//! independent and the result order must match the input order so that
//! reports, seeds and tests stay reproducible. This crate provides that
//! one primitive — [`par_map`] — built on `std::thread::scope` with no
//! external dependencies (the build environment is offline).
//!
//! Work distribution is a shared atomic cursor: each worker claims the
//! next unclaimed index, computes `f(&items[i])`, and stores the result
//! in slot `i`. Slot `i` therefore always holds `f(&items[i])`
//! regardless of which worker ran it or in which order — the output is
//! bit-identical across thread counts.
//!
//! # Example
//!
//! ```
//! let squares = sprint_parallel::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count (`0`/unset means
/// "use every available core").
pub const THREADS_ENV: &str = "SPRINT_THREADS";

/// The default worker count: `SPRINT_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn max_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on up to [`max_threads`] workers, returning
/// results in input order (slot `i` holds `f(&items[i])`).
///
/// Spawns no threads when `items` has zero or one element or only one
/// worker is available; the closure then runs on the caller's thread.
///
/// # Panics
///
/// Panics if any invocation of `f` panics (the scope rethrows on join,
/// reporting "a scoped thread panicked").
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_threads(max_threads(), items, f)
}

/// [`par_map`] with an explicit worker-count cap (used by the ordering
/// tests; production code should prefer `par_map`).
///
/// # Panics
///
/// Panics if `threads` is zero; propagates panics from `f`.
pub fn par_map_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    assert!(threads > 0, "at least one worker is required");
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // Mutex<Option<U>> rather than OnceLock<U>: each slot is written by
    // exactly one claiming worker, and Mutex only demands `U: Send`.
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by a claiming worker")
        })
        .collect()
}

/// Fallible [`par_map`]: runs every item, then returns either all
/// results in input order or the error of the *lowest-indexed* failing
/// item — so the reported error is deterministic across thread counts
/// too.
///
/// # Errors
///
/// The first (by input index) error produced by `f`.
pub fn par_try_map<T, U, E, F>(items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    par_try_map_threads(max_threads(), items, f)
}

/// [`par_try_map`] with an explicit worker-count cap. Use this for the
/// *outer* level of a nested fan-out: capping it bounds the total
/// thread product when the mapped tasks spawn their own `par_map`
/// workers internally.
///
/// # Errors
///
/// The first (by input index) error produced by `f`.
///
/// # Panics
///
/// Panics if `threads` is zero; propagates panics from `f`.
pub fn par_try_map_threads<T, U, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    let outcomes = par_map_threads(threads, items, f);
    outcomes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(none.is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = par_map_threads(8, &items, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        let err = par_try_map(&items, |&i| if i % 10 == 3 { Err(i) } else { Ok(i) });
        assert_eq!(err, Err(3), "error of the lowest failing index wins");
        let ok = par_try_map(&items, |&i| Ok::<_, ()>(i * 2));
        assert_eq!(ok.unwrap()[5], 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = par_map_threads(0, &[1], |&x: &i32| x);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        let _ = par_map_threads(4, &items, |&i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    proptest! {
        #[test]
        fn prop_ordering_deterministic_across_thread_counts(
            n in 0usize..200,
            threads in 1usize..9,
        ) {
            let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
            let sequential: Vec<u64> = items.iter().map(|&x| x ^ (x >> 7)).collect();
            let parallel = par_map_threads(threads, &items, |&x| x ^ (x >> 7));
            prop_assert_eq!(parallel, sequential);
        }
    }
}
