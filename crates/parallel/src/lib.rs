//! Scoped-thread fan-out with deterministic result ordering.
//!
//! The experiment drivers, profile generators and trace synthesizers of
//! the SPRINT reproduction are embarrassingly parallel: every item is
//! independent and the result order must match the input order so that
//! reports, seeds and tests stay reproducible. This crate provides that
//! one primitive — [`par_map`] — built on `std::thread::scope` with no
//! external dependencies (the build environment is offline).
//!
//! Work distribution is a shared atomic cursor: each worker claims the
//! next unclaimed index, computes `f(&items[i])`, and stores the result
//! in slot `i`. Slot `i` therefore always holds `f(&items[i])`
//! regardless of which worker ran it or in which order — the output is
//! bit-identical across thread counts.
//!
//! # Example
//!
//! ```
//! let squares = sprint_parallel::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable overriding the worker count (`0`/unset means
/// "use every available core").
pub const THREADS_ENV: &str = "SPRINT_THREADS";

/// The default worker count: `SPRINT_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn max_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on up to [`max_threads`] workers, returning
/// results in input order (slot `i` holds `f(&items[i])`).
///
/// Spawns no threads when `items` has zero or one element or only one
/// worker is available; the closure then runs on the caller's thread.
///
/// # Panics
///
/// Panics if any invocation of `f` panics (the scope rethrows on join,
/// reporting "a scoped thread panicked").
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_threads(max_threads(), items, f)
}

/// [`par_map`] with an explicit worker-count cap (used by the ordering
/// tests; production code should prefer `par_map`).
///
/// # Panics
///
/// Panics if `threads` is zero; propagates panics from `f`.
pub fn par_map_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    assert!(threads > 0, "at least one worker is required");
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // Mutex<Option<U>> rather than OnceLock<U>: each slot is written by
    // exactly one claiming worker, and Mutex only demands `U: Send`.
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by a claiming worker")
        })
        .collect()
}

/// Per-worker execution counters from a chunked fan-out
/// ([`par_chunk_try_map_threads`]).
///
/// `busy_ns` is the worker's **thread CPU time** where the platform
/// exposes it (Linux), so it counts only cycles the worker actually
/// executed — on an oversubscribed or single-core host it stays an
/// honest measure of how the work was distributed, unlike wall-clock,
/// which also charges a worker for time it spent descheduled.
/// `wall_ns` is the worker's wall-clock span for comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// The worker's index (`0..workers`).
    pub worker: usize,
    /// Items this worker executed.
    pub items: usize,
    /// Thread CPU nanoseconds spent in the worker's chunk (wall-clock
    /// fallback on platforms without per-thread CPU clocks).
    pub busy_ns: u128,
    /// Wall-clock nanoseconds from the worker's first item to its last.
    pub wall_ns: u128,
}

/// The calling thread's CPU time in nanoseconds, or `None` where the
/// platform exposes no per-thread CPU clock.
///
/// Unlike wall-clock, two samples of this clock bracket only the
/// cycles *this thread* executed — the honest busy-time measure on
/// hosts where workers time-share cores.
#[cfg(target_os = "linux")]
pub fn thread_cpu_ns() -> Option<u128> {
    // `/proc/thread-self/schedstat` line: "<on-cpu ns> <runqueue ns>
    // <timeslices>". The first field is the scheduler's cumulative
    // on-CPU time for the calling thread, which is the per-thread CPU
    // clock without reaching for unsafe FFI.
    let stat = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    stat.split_whitespace().next()?.parse().ok()
}

/// The calling thread's CPU time in nanoseconds, or `None` where the
/// platform exposes no per-thread CPU clock (this platform does not).
#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_ns() -> Option<u128> {
    None
}

/// Splits `0..n` into at most `workers` contiguous, balanced,
/// deterministic ranges (sizes differ by at most one; earlier ranges
/// take the remainder). Returns an empty vector for `n == 0` and
/// never returns an empty range, so every returned chunk holds work.
///
/// This is the work-distribution rule of the chunked fan-out: the
/// mapping from item index to worker is a pure function of
/// `(n, workers)`, so which worker runs an item never depends on
/// scheduling — the precondition for pinning per-worker state without
/// cross-worker locks.
///
/// # Example
///
/// ```
/// let chunks = sprint_parallel::chunk_ranges(10, 4);
/// assert_eq!(chunks, vec![0..3, 3..6, 6..8, 8..10]);
/// assert!(sprint_parallel::chunk_ranges(0, 4).is_empty());
/// assert_eq!(sprint_parallel::chunk_ranges(2, 4).len(), 2);
/// ```
pub fn chunk_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    let w = workers.max(1).min(n);
    if w == 0 {
        return Vec::new();
    }
    let base = n / w;
    let extra = n % w;
    let mut ranges = Vec::with_capacity(w);
    let mut start = 0;
    for i in 0..w {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Chunked fallible fan-out with per-worker busy accounting: item `i`
/// of `items` runs as `f(worker, i, &items[i])` on the worker that
/// [`chunk_ranges`] deterministically assigns it, and each worker
/// walks its contiguous chunk in index order on one thread.
///
/// This is the shard-friendly sibling of [`par_try_map_threads`]: the
/// worker index passed to `f` is stable for the whole chunk, so `f`
/// can own per-worker state (a scratch arena, a pinned substrate
/// shard) for its entire run with no cross-worker locking and no
/// slot-stealing. Results come back in input order; the reported
/// error is the lowest-indexed failure (a failing worker stops at its
/// first error, and chunks are index-ordered, so the first failing
/// chunk in order holds the globally lowest failing index).
///
/// Returns the results alongside one [`WorkerStats`] per spawned
/// worker (chunks run on the caller's thread when only one chunk
/// exists; the stats still report it as worker 0).
///
/// # Errors
///
/// The error of the lowest-indexed failing item.
///
/// # Panics
///
/// Panics if `threads` is zero; propagates panics from `f`.
#[allow(clippy::type_complexity)]
pub fn par_chunk_try_map_threads<T, U, E, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> Result<(Vec<U>, Vec<WorkerStats>), E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, usize, &T) -> Result<U, E> + Sync,
{
    assert!(threads > 0, "at least one worker is required");
    let ranges = chunk_ranges(items.len(), threads);
    let run_chunk = |worker: usize, range: Range<usize>| -> (Result<Vec<U>, E>, WorkerStats) {
        let wall = Instant::now();
        let cpu_start = thread_cpu_ns();
        let mut out = Vec::with_capacity(range.len());
        let mut failure = None;
        for i in range.clone() {
            match f(worker, i, &items[i]) {
                Ok(v) => out.push(v),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        let wall_ns = wall.elapsed().as_nanos();
        let busy_ns = match (cpu_start, thread_cpu_ns()) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => wall_ns,
        };
        let stats = WorkerStats {
            worker,
            items: out.len() + usize::from(failure.is_some()),
            busy_ns,
            wall_ns,
        };
        match failure {
            Some(e) => (Err(e), stats),
            None => (Ok(out), stats),
        }
    };

    let chunks: Vec<(Result<Vec<U>, E>, WorkerStats)> = if ranges.len() <= 1 {
        ranges
            .into_iter()
            .map(|range| run_chunk(0, range))
            .collect()
    } else {
        let run_chunk = &run_chunk;
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .enumerate()
                .map(|(w, range)| scope.spawn(move || run_chunk(w, range)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("a scoped thread panicked"))
                .collect()
        })
    };

    let mut results = Vec::with_capacity(items.len());
    let mut stats = Vec::with_capacity(chunks.len());
    for (outcome, s) in chunks {
        stats.push(s);
        results.extend(outcome?);
    }
    Ok((results, stats))
}

/// Fallible [`par_map`]: runs every item, then returns either all
/// results in input order or the error of the *lowest-indexed* failing
/// item — so the reported error is deterministic across thread counts
/// too.
///
/// # Errors
///
/// The first (by input index) error produced by `f`.
pub fn par_try_map<T, U, E, F>(items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    par_try_map_threads(max_threads(), items, f)
}

/// [`par_try_map`] with an explicit worker-count cap. Use this for the
/// *outer* level of a nested fan-out: capping it bounds the total
/// thread product when the mapped tasks spawn their own `par_map`
/// workers internally.
///
/// # Errors
///
/// The first (by input index) error produced by `f`.
///
/// # Panics
///
/// Panics if `threads` is zero; propagates panics from `f`.
pub fn par_try_map_threads<T, U, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    let outcomes = par_map_threads(threads, items, f);
    outcomes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(none.is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = par_map_threads(8, &items, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        let err = par_try_map(&items, |&i| if i % 10 == 3 { Err(i) } else { Ok(i) });
        assert_eq!(err, Err(3), "error of the lowest failing index wins");
        let ok = par_try_map(&items, |&i| Ok::<_, ()>(i * 2));
        assert_eq!(ok.unwrap()[5], 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = par_map_threads(0, &[1], |&x: &i32| x);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        let _ = par_map_threads(4, &items, |&i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn chunk_ranges_cover_everything_once_and_balance() {
        for n in 0..50usize {
            for workers in 1..9usize {
                let ranges = chunk_ranges(n, workers);
                assert!(ranges.len() <= workers);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "chunks must be contiguous");
                    assert!(!r.is_empty(), "no empty chunks");
                    next = r.end;
                }
                assert_eq!(next, n, "chunks must cover 0..n");
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(Range::len).min(),
                    ranges.iter().map(Range::len).max(),
                ) {
                    assert!(max - min <= 1, "chunk sizes differ by at most one");
                }
            }
        }
    }

    #[test]
    fn chunked_map_matches_sequential_and_reports_stats() {
        let items: Vec<u64> = (0..101).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in 1..6usize {
            let (out, stats) =
                par_chunk_try_map_threads(threads, &items, |_, _, &x| Ok::<_, ()>(x * x + 1))
                    .unwrap();
            assert_eq!(out, sequential, "results identical at {threads} workers");
            assert_eq!(stats.len(), threads.min(items.len()));
            assert_eq!(
                stats.iter().map(|s| s.items).sum::<usize>(),
                items.len(),
                "every item accounted to exactly one worker"
            );
            for (w, s) in stats.iter().enumerate() {
                assert_eq!(s.worker, w);
                assert!(s.items > 0, "worker {w} must have run a non-empty chunk");
            }
        }
    }

    #[test]
    fn chunked_map_passes_stable_worker_index() {
        let items: Vec<usize> = (0..40).collect();
        let (assignments, _) = par_chunk_try_map_threads(4, &items, |worker, i, &x| {
            assert_eq!(i, x, "item index must match input position");
            Ok::<_, ()>(worker)
        })
        .unwrap();
        let expected: Vec<usize> = chunk_ranges(items.len(), 4)
            .into_iter()
            .enumerate()
            .flat_map(|(w, r)| r.map(move |_| w))
            .collect();
        assert_eq!(
            assignments, expected,
            "item-to-worker assignment is the pure chunk_ranges function"
        );
    }

    #[test]
    fn chunked_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        for threads in 1..6usize {
            let err = par_chunk_try_map_threads(threads, &items, |_, _, &i| {
                if i % 10 == 3 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            assert_eq!(err.err(), Some(3), "lowest failing index wins at {threads}");
        }
    }

    #[test]
    fn chunked_map_handles_empty_input() {
        let (out, stats) =
            par_chunk_try_map_threads(4, &[] as &[u32], |_, _, &x| Ok::<_, ()>(x)).unwrap();
        assert!(out.is_empty());
        assert!(stats.is_empty());
    }

    #[test]
    fn thread_cpu_clock_advances_under_load() {
        let Some(before) = thread_cpu_ns() else {
            return; // platform without a per-thread CPU clock
        };
        // Spin enough to consume measurable CPU time on this thread.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i ^ (acc >> 3));
        }
        std::hint::black_box(acc);
        let after = thread_cpu_ns().expect("clock available above");
        assert!(after >= before, "per-thread CPU clock must be monotonic");
    }

    proptest! {
        #[test]
        fn prop_chunked_matches_unchunked(
            n in 0usize..150,
            threads in 1usize..9,
        ) {
            let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x517c_c1b7)).collect();
            let sequential: Vec<u64> = items.iter().map(|&x| x ^ (x >> 9)).collect();
            let (parallel, _) = par_chunk_try_map_threads(
                threads,
                &items,
                |_, _, &x| Ok::<_, ()>(x ^ (x >> 9)),
            ).unwrap();
            prop_assert_eq!(parallel, sequential);
        }
    }

    proptest! {
        #[test]
        fn prop_ordering_deterministic_across_thread_counts(
            n in 0usize..200,
            threads in 1usize..9,
        ) {
            let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
            let sequential: Vec<u64> = items.iter().map(|&x| x ^ (x >> 7)).collect();
            let parallel = par_map_threads(threads, &items, |&x| x ^ (x >> 7));
            prop_assert_eq!(parallel, sequential);
        }
    }
}
