//! Integration-test host crate. All tests live under `tests/tests/`.
