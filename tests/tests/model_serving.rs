//! Model-level serving contracts: `ModelServer` must be bit-identical
//! across worker counts and exactly equal to a sequential loop of
//! independent `run_head` calls folded through the public roll-up API
//! — for any profile shape, ragged layers included.

use proptest::prelude::*;

use sprint_engine::{
    Engine, ExecutionMode, HeadRequest, LayerReport, ModelProfile, ModelRequest, ModelResponse,
    ModelServer, PerfRollup, SprintConfig,
};
use sprint_reram::NoiseModel;
use sprint_workloads::{ModelConfig, ProxyTask, TraceGenerator};

/// The sequential per-head reference: walk the request's own
/// [`ModelRequest::head_plan`], run every head through `run_head`
/// independently, and fold the responses with the public
/// [`PerfRollup`] API. This is the loop `ModelServer::serve` replaces;
/// the server must match it bit for bit.
fn reference_serve(server: &ModelServer, request: &ModelRequest) -> ModelResponse {
    let engine = server.engine();
    let mode = request.mode_override().unwrap_or(engine.mode());
    let mut layers: Vec<LayerReport> = request
        .profile()
        .layer_seq_lens()
        .iter()
        .enumerate()
        .map(|(layer, &seq_len)| LayerReport {
            layer,
            seq_len,
            perf: PerfRollup::default(),
        })
        .collect();
    let mut total = PerfRollup::default();
    for plan in request.head_plan() {
        let trace = TraceGenerator::new(plan.trace_seed)
            .generate(&plan.spec)
            .unwrap();
        let mut head = HeadRequest::from_trace(&trace).with_head_id(plan.head_id);
        if let Some(mode) = request.mode_override() {
            head = head.with_mode(mode);
        }
        if let Some(spec) = request.threshold_spec_override() {
            head = head.with_threshold_spec(spec);
        }
        let response = engine.run_head(&head).unwrap();
        let mut rollup = PerfRollup::from_response(
            mode,
            engine.config(),
            request.profile().head_dim(),
            plan.spec.seq_len,
            trace.live_tokens(),
            &response,
        );
        if request.wants_accuracy() {
            let model = request.profile().source().unwrap();
            let task = ProxyTask::new(&trace, model, plan.task_seed).unwrap();
            rollup.record_score(task.evaluate(&response.output).unwrap());
        }
        layers[plan.layer].perf.merge(&rollup);
    }
    // Totals are defined as the merge of the layer reports, matching
    // the server's fold order exactly.
    for layer in &layers {
        total.merge(&layer.perf);
    }
    ModelResponse {
        model: request.profile().name().to_string(),
        mode,
        layers,
        total,
    }
}

fn server(slots: usize) -> ModelServer {
    ModelServer::new(
        Engine::builder(SprintConfig::small())
            .noise(NoiseModel::default())
            .seed(9)
            .worker_slots(slots)
            .build()
            .unwrap(),
    )
}

#[test]
fn serving_is_bit_identical_across_worker_counts() {
    // The acceptance contract: 1/2/4/8 workers and the sequential
    // per-head reference all produce the same ModelResponse, down to
    // the accuracy means (same fold order, same f64 sums).
    let server = server(8);
    let profile = ModelProfile::from_model(&ModelConfig::bert_base())
        .with_heads(2)
        .with_layer_seq_lens(vec![48, 32, 40]);
    let request = ModelRequest::new(profile).with_seed(21).with_accuracy(true);
    let reference = reference_serve(&server, &request);
    assert!(reference.total.accuracy().is_some());
    for workers in [1usize, 2, 4, 8] {
        let response = server.serve_threads(workers, &request).unwrap();
        assert_eq!(response, reference, "workers = {workers}");
    }
}

#[test]
fn repeated_serves_reuse_state_without_drift() {
    // A long-lived server must give the same answer on the hundredth
    // pass as on the first, whatever ran in between.
    let server = server(2);
    let profile = ModelProfile::from_model(&ModelConfig::vit_base())
        .with_layers(1)
        .with_heads(2)
        .with_seq_len(40);
    let request = ModelRequest::new(profile).with_seed(3);
    let first = server.serve(&request).unwrap();
    // Interleave unrelated traffic of different shapes and modes.
    for (i, mode) in ExecutionMode::ALL.iter().enumerate() {
        let other = ModelProfile::from_model(&ModelConfig::bert_base())
            .with_layers(1)
            .with_heads(1)
            .with_seq_len(24 + 8 * i);
        server
            .serve(
                &ModelRequest::new(other)
                    .with_seed(i as u64)
                    .with_mode(*mode),
            )
            .unwrap();
    }
    assert_eq!(server.serve(&request).unwrap(), first);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For random model shapes — ragged per-layer sequence lengths
    /// included — the served aggregation equals the sum of independent
    /// `run_head` calls on energy, cycles, data movement and accuracy.
    #[test]
    fn prop_serve_equals_sum_of_independent_heads(
        model_idx in 0usize..4,
        heads in 1usize..3,
        seq_lens in proptest::collection::vec(24usize..56, 1..4),
        base_seed in 0u64..1000,
        workers in 1usize..5,
        mode_idx in 0usize..4,
    ) {
        let models = [
            ModelConfig::bert_base(),
            ModelConfig::vit_base(),
            ModelConfig::gpt2_large(),
            ModelConfig::albert_xl(),
        ];
        let profile = ModelProfile::from_model(&models[model_idx])
            .with_heads(heads)
            .with_layer_seq_lens(seq_lens.clone());
        let request = ModelRequest::new(profile)
            .with_seed(base_seed)
            .with_mode(ExecutionMode::ALL[mode_idx])
            .with_accuracy(true);
        let server = server(4);
        let served = server.serve_threads(workers, &request).unwrap();
        let reference = reference_serve(&server, &request);
        prop_assert_eq!(&served, &reference);
        // Aggregation sanity on top of equality: totals are the merge
        // of the layers, and every layer holds exactly `heads` heads.
        let mut merged = PerfRollup::default();
        for layer in &served.layers {
            prop_assert_eq!(layer.perf.heads, heads as u64);
            merged.merge(&layer.perf);
        }
        prop_assert_eq!(&merged, &served.total);
        prop_assert_eq!(served.layers.len(), seq_lens.len());
    }
}
