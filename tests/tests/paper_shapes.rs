//! The paper's headline shapes, checked at a larger scale than the
//! unit tests: who wins, by roughly what factor, and where the trends
//! cross. Absolute values are not asserted (the substrate is a
//! simulator, not the authors' testbed) — orderings and bands are.

use sprint_core::counting::{simulate_head, ExecutionMode};
use sprint_core::experiments::{self, Scale};
use sprint_core::{geomean, HeadProfile, SprintConfig};
use sprint_workloads::ModelConfig;

fn shape_scale() -> Scale {
    Scale {
        seq_cap: 384,
        accuracy_seq: 96,
        seed: 0x5a,
    }
}

fn speedups_and_energy() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let scale = shape_scale();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut energies: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (i, model) in ModelConfig::all().into_iter().enumerate() {
        let profile = scale.profile(&model, i as u64);
        for (c, cfg) in SprintConfig::all().into_iter().enumerate() {
            let base = simulate_head(&profile, &cfg, ExecutionMode::Baseline);
            let sprint = simulate_head(&profile, &cfg, ExecutionMode::Sprint);
            speedups[c].push(sprint.speedup_over(&base));
            energies[c].push(sprint.energy_reduction_over(&base));
        }
    }
    (speedups, energies)
}

#[test]
fn headline_geomeans_land_in_paper_bands() {
    // Paper: speedup 7.5/7.4/7.1x; energy 19.6/16.8/12.0x for S/M/L.
    let (speedups, energies) = speedups_and_energy();
    for (c, name) in ["S", "M", "L"].iter().enumerate() {
        let gs = geomean(&speedups[c]);
        let ge = geomean(&energies[c]);
        assert!(
            (3.0..25.0).contains(&gs),
            "{name}: speedup geomean {gs} outside band"
        );
        assert!(
            (4.0..35.0).contains(&ge),
            "{name}: energy geomean {ge} outside band"
        );
    }
    // Ordering: both metrics mildly favour the smaller configurations
    // (scarcer on-chip memory = more for SPRINT to save).
    let gs: Vec<f64> = speedups.iter().map(|v| geomean(v)).collect();
    let ge: Vec<f64> = energies.iter().map(|v| geomean(v)).collect();
    assert!(gs[0] > gs[2], "S speedup {} must beat L {}", gs[0], gs[2]);
    assert!(ge[0] > ge[2], "S energy {} must beat L {}", ge[0], ge[2]);
    // Energy reductions exceed speedups (19.6 vs 7.5 in the paper).
    assert!(
        ge[0] > gs[0] * 0.9,
        "energy {} should rival speedup {}",
        ge[0],
        gs[0]
    );
}

#[test]
fn vit_gains_least_bert_class_most() {
    let scale = shape_scale();
    let cfg = SprintConfig::small();
    let mut by_name = std::collections::HashMap::new();
    for (i, model) in ModelConfig::all().into_iter().enumerate() {
        let profile = scale.profile(&model, 0x40 + i as u64);
        let base = simulate_head(&profile, &cfg, ExecutionMode::Baseline);
        let sprint = simulate_head(&profile, &cfg, ExecutionMode::Sprint);
        by_name.insert(model.name, sprint.speedup_over(&base));
    }
    let vit = by_name["ViT-B"];
    for (name, s) in &by_name {
        if *name != "ViT-B" {
            assert!(
                *s > vit,
                "{name} ({s:.2}) must beat ViT-B ({vit:.2}) — Fig. 11's minimum"
            );
        }
    }
    // ViT-B's band from the paper: 2.7-2.8x.
    assert!((1.8..4.5).contains(&vit), "ViT-B speedup {vit}");
}

#[test]
fn synthetic_long_sequences_favour_larger_configs_on_energy() {
    // Fig. 12's exception: Synth-1/2 gain *more* from L-SPRINT
    // because even 64 KB holds only a sliver of a 2-4K sequence.
    let scale = Scale {
        seq_cap: 4096,
        accuracy_seq: 96,
        seed: 0x5b,
    };
    for model in [ModelConfig::synth1(), ModelConfig::synth2()] {
        let profile = scale.profile(&model, 0x77);
        let s = {
            let cfg = SprintConfig::small();
            simulate_head(&profile, &cfg, ExecutionMode::Sprint)
                .energy_reduction_over(&simulate_head(&profile, &cfg, ExecutionMode::Baseline))
        };
        let l = {
            let cfg = SprintConfig::large();
            simulate_head(&profile, &cfg, ExecutionMode::Sprint)
                .energy_reduction_over(&simulate_head(&profile, &cfg, ExecutionMode::Baseline))
        };
        assert!(
            l > s,
            "{}: L-SPRINT ({l:.1}x) must beat S-SPRINT ({s:.1}x) on energy",
            model.name
        );
    }
}

#[test]
fn pruning_only_ablation_matches_paper_band() {
    // Paper: 1.8/1.7/1.7x speedup from runtime pruning without the
    // in-memory support.
    let scale = shape_scale();
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (i, model) in ModelConfig::all().into_iter().enumerate() {
        let profile = scale.profile(&model, 0x90 + i as u64);
        for (c, cfg) in SprintConfig::all().into_iter().enumerate() {
            let base = simulate_head(&profile, &cfg, ExecutionMode::Baseline);
            let pruned = simulate_head(&profile, &cfg, ExecutionMode::PruningOnly);
            per_config[c].push(pruned.speedup_over(&base));
        }
    }
    for v in &per_config {
        let g = geomean(v);
        assert!(
            (1.0..3.5).contains(&g),
            "pruning-only geomean {g} far from the paper's ~1.7-1.8x"
        );
    }
}

#[test]
fn fig10_sprint_dominates_mask_only_everywhere() {
    let scale = shape_scale();
    for (i, model) in ModelConfig::all().into_iter().enumerate() {
        let profile = scale.profile(&model, 0xa0 + i as u64);
        let s_baseline = simulate_head(&profile, &SprintConfig::small(), ExecutionMode::Baseline);
        for cfg in SprintConfig::all() {
            let mask = simulate_head(&profile, &cfg, ExecutionMode::MaskOnly);
            let sprint = simulate_head(&profile, &cfg, ExecutionMode::Sprint);
            assert!(
                sprint.data_movement_reduction_over(&s_baseline) + 1e-9
                    >= mask.data_movement_reduction_over(&s_baseline),
                "{} on {}: SPRINT must move no more data than mask-only",
                model.name,
                cfg.name
            );
        }
    }
}

#[test]
fn fig13_energy_stack_orderings() {
    let scale = shape_scale();
    let cfg = SprintConfig::medium();
    for (i, model) in ModelConfig::all().into_iter().enumerate() {
        let profile = scale.profile(&model, 0xb0 + i as u64);
        let base = simulate_head(&profile, &cfg, ExecutionMode::Baseline);
        let prune = simulate_head(&profile, &cfg, ExecutionMode::PruningOnly);
        let sprint = simulate_head(&profile, &cfg, ExecutionMode::Sprint);
        let b = base.energy.total().as_pj();
        let p = prune.energy.total().as_pj();
        let s = sprint.energy.total().as_pj();
        assert!(b > p && p > s, "{}: {b} > {p} > {s} violated", model.name);
        // In-memory pruning overhead is marginal (paper: ~4% of the
        // SPRINT stack).
        let inram = sprint
            .energy
            .get(sprint_energy::Category::InReramPruning)
            .as_pj();
        assert!(
            inram / s < 0.30,
            "{}: in-ReRAM pruning {inram} is {}% of SPRINT stack",
            model.name,
            (inram / s * 100.0) as u32
        );
    }
}

#[test]
fn experiment_drivers_are_deterministic() {
    let scale = shape_scale();
    let a = experiments::fig10(&scale);
    let b = experiments::fig10(&scale);
    assert_eq!(a, b, "same scale and seed must reproduce identical rows");
    let p1 = HeadProfile::synthetic(256, 200, 0.25, 0.85, 5);
    let p2 = HeadProfile::synthetic(256, 200, 0.25, 0.85, 5);
    assert_eq!(p1, p2);
}
