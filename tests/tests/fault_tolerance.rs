//! Fault-tolerant substrate, end to end: injected ReRAM faults must
//! degrade service gracefully — results stay bit-identical across
//! worker counts, no errors surface under non-Fail policies, and
//! unrepairable damage demotes to the exact digital pipeline instead
//! of corrupting outputs.

use sprint_core::SprintConfig;
use sprint_engine::{
    DecodeLoop, DecodeTask, Engine, ExecutionMode, FaultPolicy, HeadRequest, ModelProfile,
    ModelRequest, ModelServer, SprintError,
};
use sprint_reram::{FaultModel, NoiseModel, ReramError};
use sprint_workloads::{ModelConfig, TraceGenerator};

fn traces(n: usize, seq: usize) -> Vec<sprint_workloads::HeadTrace> {
    (0..n)
        .map(|i| {
            let spec = ModelConfig::bert_base().trace_spec().with_seq_len(seq);
            TraceGenerator::new(1000 + i as u64)
                .generate(&spec)
                .unwrap()
        })
        .collect()
}

fn engine_with(
    model: Option<FaultModel>,
    policy: FaultPolicy,
    mode: ExecutionMode,
    workers: usize,
) -> Engine {
    let mut b = Engine::builder(SprintConfig::medium())
        .noise(NoiseModel::default())
        .mode(mode)
        .seed(0xdead)
        .worker_slots(workers)
        .fault_policy(policy);
    if let Some(m) = model {
        b = b.fault_model(m);
    }
    b.build().unwrap()
}

#[test]
fn fault_policy_without_a_model_changes_nothing() {
    // The pinned contract: a fault-free engine is bit-identical to the
    // pre-fault pipeline no matter which policy it carries, and every
    // response reports a clean default fault record.
    let traces = traces(3, 48);
    let requests: Vec<HeadRequest> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| HeadRequest::from_trace(t).with_head_id(i as u64))
        .collect();
    let baseline = engine_with(None, FaultPolicy::default(), ExecutionMode::Sprint, 1)
        .run_batch(&requests)
        .unwrap();
    for policy in [
        FaultPolicy::Monitor,
        FaultPolicy::Retry { max_attempts: 5 },
        FaultPolicy::Remap {
            max_attempts: 2,
            spare_columns: 8,
        },
        FaultPolicy::Fail { max_attempts: 1 },
    ] {
        let responses = engine_with(None, policy, ExecutionMode::Sprint, 1)
            .run_batch(&requests)
            .unwrap();
        assert_eq!(responses, baseline, "policy {policy:?} altered results");
    }
    for response in &baseline {
        assert_eq!(response.faults, Default::default());
        assert!(!response.faults.degraded());
    }
}

#[test]
fn faulted_batches_are_bit_identical_across_1_2_4_8_workers() {
    // Fault state derives from each crossbar's construction-seed
    // identity, never from scheduling — so the same faulted batch must
    // produce the same bytes at every worker count.
    let model = FaultModel::uniform(0.05, 0xbad).unwrap();
    let traces = traces(6, 40);
    let requests: Vec<HeadRequest> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| HeadRequest::from_trace(t).with_head_id(i as u64))
        .collect();
    let reference = engine_with(
        Some(model),
        FaultPolicy::default(),
        ExecutionMode::Sprint,
        1,
    )
    .run_batch(&requests)
    .unwrap();
    let detected: u64 = reference.iter().map(|r| r.faults.faults_detected).sum();
    assert!(detected > 0, "a 5% fault rate must be visible to the scrub");
    for workers in [2usize, 4, 8] {
        let responses = engine_with(
            Some(model),
            FaultPolicy::default(),
            ExecutionMode::Sprint,
            workers,
        )
        .run_batch(&requests)
        .unwrap();
        assert_eq!(responses, reference, "diverged at {workers} workers");
    }
}

#[test]
fn unrepairable_faults_demote_to_the_exact_dense_pipeline() {
    // Every bitline faulty: repair cannot help, remapping cannot
    // absorb it, so the Demote ladder must fall back to on-chip dense
    // recomputation — bit-identical to a fault-free Dense engine —
    // with zero surfaced errors.
    let model = FaultModel::new(3).with_line_rates(1.0, 0.0).unwrap();
    let traces = traces(2, 32);
    for (i, trace) in traces.iter().enumerate() {
        let request = HeadRequest::from_trace(trace).with_head_id(i as u64);
        let demoted = engine_with(
            Some(model),
            FaultPolicy::Demote { max_attempts: 2 },
            ExecutionMode::Sprint,
            1,
        )
        .run_head(&request)
        .unwrap();
        assert!(demoted.faults.demoted, "head {i} must demote");
        assert!(demoted.faults.degraded());
        assert!(demoted.faults.faults_detected > 0);
        let dense = engine_with(None, FaultPolicy::default(), ExecutionMode::Dense, 1)
            .run_head(&request)
            .unwrap();
        assert_eq!(demoted.output, dense.output, "head {i} output");
        assert_eq!(demoted.decisions, dense.decisions, "head {i} decisions");
    }
}

#[test]
fn fail_policy_surfaces_the_first_faulty_site() {
    let model = FaultModel::new(3).with_line_rates(1.0, 0.0).unwrap();
    let trace = &traces(1, 24)[0];
    let err = engine_with(
        Some(model),
        FaultPolicy::Fail { max_attempts: 1 },
        ExecutionMode::Sprint,
        1,
    )
    .run_head(&HeadRequest::from_trace(trace))
    .unwrap_err();
    match err {
        SprintError::Reram(ReramError::ProgramFault { crossbar, .. }) => {
            assert_ne!(crossbar, 0, "the site names the faulty crossbar");
        }
        other => panic!("expected a ProgramFault, got {other}"),
    }
}

#[test]
fn remap_policy_substitutes_spares_without_demoting() {
    // A sparse column-fault population fits in the spare budget: the
    // engine must remap rather than demote, and still finish cleanly.
    let model = FaultModel::new(9).with_line_rates(0.05, 0.0).unwrap();
    let traces = traces(3, 40);
    let requests: Vec<HeadRequest> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| HeadRequest::from_trace(t).with_head_id(i as u64))
        .collect();
    let responses = engine_with(
        Some(model),
        FaultPolicy::Remap {
            max_attempts: 2,
            spare_columns: 64,
        },
        ExecutionMode::Sprint,
        1,
    )
    .run_batch(&requests)
    .unwrap();
    let remapped: u64 = responses.iter().map(|r| r.faults.remapped_columns).sum();
    assert!(remapped > 0, "5% column faults must exercise the spares");
    for response in &responses {
        assert!(!response.faults.demoted);
        assert!(response.output.as_slice().iter().all(|x| x.is_finite()));
    }
}

#[test]
fn faulted_decode_loop_completes_and_is_worker_invariant() {
    // Mid-decode fault handling: every session must run to completion
    // under a nonzero fault rate, account its scrub findings, and stay
    // bit-identical across worker counts.
    let model = FaultModel::uniform(0.05, 0x5eed).unwrap();
    let base = ModelConfig::bert_base().trace_spec();
    let tasks: Vec<DecodeTask> = [
        (32usize, 16usize, None),
        (24, 8, Some(ExecutionMode::NoRecompute)),
        (16, 12, Some(ExecutionMode::Dense)),
        (40, 1, None),
    ]
    .into_iter()
    .map(|(seq, prefill, mode)| DecodeTask {
        spec: base.with_seq_len(seq),
        prefill,
        mode,
        threshold_spec: None,
    })
    .collect();
    let engine = engine_with(Some(model), FaultPolicy::Monitor, ExecutionMode::Sprint, 1);
    let reference = DecodeLoop::new(&engine).run_threads(1, &tasks).unwrap();
    assert_eq!(reference.sessions.len(), tasks.len());
    assert!(reference.faults_detected > 0);
    // Monitoring never demotes; the Dense session never scrubs.
    assert_eq!(reference.demoted_sessions, 0);
    assert_eq!(reference.sessions[2].faults_detected, 0);
    for report in &reference.sessions {
        assert!(report.final_output.iter().all(|x| x.is_finite()));
    }
    for workers in [2usize, 4, 8] {
        let run = DecodeLoop::new(&engine)
            .run_threads(workers, &tasks)
            .unwrap();
        assert_eq!(
            run.sessions, reference.sessions,
            "decode diverged at {workers} workers"
        );
    }
}

#[test]
fn fully_faulted_decode_sessions_demote_and_match_dense() {
    // The graceful-degradation floor for decode: unrepairable faults
    // demote analog sessions mid-stream, after which every step must
    // match the fault-free Dense decode of the same tasks.
    let model = FaultModel::new(4).with_line_rates(1.0, 0.0).unwrap();
    let base = ModelConfig::bert_base().trace_spec();
    let tasks: Vec<DecodeTask> = [(24usize, 10usize), (32, 16)]
        .into_iter()
        .map(|(seq, prefill)| DecodeTask {
            spec: base.with_seq_len(seq),
            prefill,
            mode: None,
            threshold_spec: None,
        })
        .collect();
    let faulted = engine_with(
        Some(model),
        FaultPolicy::Demote { max_attempts: 1 },
        ExecutionMode::Sprint,
        1,
    );
    let report = DecodeLoop::new(&faulted).run(&tasks).unwrap();
    assert_eq!(report.demoted_sessions, tasks.len() as u64);
    let dense_tasks: Vec<DecodeTask> = tasks
        .iter()
        .map(|t| DecodeTask {
            mode: Some(ExecutionMode::Dense),
            ..*t
        })
        .collect();
    let dense_engine = engine_with(None, FaultPolicy::default(), ExecutionMode::Sprint, 1);
    let dense = DecodeLoop::new(&dense_engine).run(&dense_tasks).unwrap();
    for (faulted_session, dense_session) in report.sessions.iter().zip(&dense.sessions) {
        assert_eq!(
            faulted_session.final_output, dense_session.final_output,
            "session {} strays from the dense floor",
            faulted_session.session
        );
        assert!(faulted_session.demoted);
        assert!(faulted_session.faults_detected > 0);
    }
}

#[test]
fn model_serving_reports_fault_totals() {
    // The counters roll up through the model layer: a faulted Sprint
    // pass reports its scrub findings in the serving totals while a
    // digital pass on the same server stays clean.
    let model = FaultModel::uniform(0.05, 0xf00d).unwrap();
    let server = ModelServer::new(engine_with(
        Some(model),
        FaultPolicy::Monitor,
        ExecutionMode::Sprint,
        1,
    ));
    let profile = ModelProfile::from_model(&ModelConfig::bert_base())
        .with_layers(1)
        .with_heads(2)
        .with_seq_len(48);
    let requests = vec![
        ModelRequest::new(profile.clone()).with_mode(ExecutionMode::Sprint),
        ModelRequest::new(profile).with_mode(ExecutionMode::Dense),
    ];
    let responses = server.serve_many(&requests).unwrap();
    assert!(responses[0].total.faults_detected > 0);
    assert_eq!(responses[0].total.heads_demoted, 0);
    assert_eq!(responses[1].total.faults_detected, 0);
}
