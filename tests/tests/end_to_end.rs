//! Cross-crate integration: the full functional pipeline against the
//! analytical reference implementations.

use sprint_attention::{mean_abs_error, prune_set_overlap, pruned_attention, PruneDecision};
use sprint_core::SprintConfig;
use sprint_engine::{
    Engine, ExecutionMode, HeadRequest, HeadResponse, ModelProfile, ModelRequest, ModelResponse,
    ModelServer,
};
use sprint_reram::{InMemoryPruner, NoiseModel, ThresholdSpec};
use sprint_workloads::{ModelConfig, TraceGenerator};

fn bert_trace(seq: usize, seed: u64) -> sprint_workloads::HeadTrace {
    let spec = ModelConfig::bert_base().trace_spec().with_seq_len(seq);
    TraceGenerator::new(seed).generate(&spec).unwrap()
}

/// One SPRINT-mode head through an engine built for `config`.
fn run_sprint(
    config: SprintConfig,
    noise: NoiseModel,
    seed: u64,
    trace: &sprint_workloads::HeadTrace,
) -> HeadResponse {
    let engine = Engine::builder(config)
        .noise(noise)
        .mode(ExecutionMode::Sprint)
        .seed(seed)
        .build()
        .unwrap();
    engine.run_head(&HeadRequest::from_trace(trace)).unwrap()
}

#[test]
fn margin_protects_reference_kept_set_across_the_stack() {
    // DESIGN.md invariant 3, end to end: with the 3-sigma margin, the
    // in-memory kept set is (nearly) a superset of the digital one, so
    // recompute can restore the reference output.
    let trace = bert_trace(96, 31);
    let live = trace.live_tokens();
    let noise = NoiseModel::default();
    let mut pruner = InMemoryPruner::new(
        &submatrix(trace.q(), live),
        &submatrix(trace.k(), live),
        trace.config().scale(),
        noise,
        77,
    )
    .unwrap();
    let spec = ThresholdSpec::analog_with_noise_margin(&noise);
    let mut worst_recall = 1.0f64;
    for i in 0..live {
        let outcome = pruner
            .prune_query(trace.q().row(i), trace.threshold(), &spec)
            .unwrap();
        // Digital reference on the live region.
        let reference = PruneDecision::new(
            (0..live)
                .map(|j| trace.reference_decisions()[i].is_pruned(j))
                .collect(),
        );
        let recall = prune_set_overlap(&reference, &outcome.decision);
        worst_recall = worst_recall.min(recall);
    }
    // The margin protects against analog noise; the 4-bit MSB
    // approximation itself can still flip a few borderline keys.
    assert!(worst_recall > 0.85, "worst per-query recall {worst_recall}");
}

#[test]
fn sprint_system_output_matches_runtime_pruning_reference() {
    let trace = bert_trace(96, 32);
    let out = run_sprint(SprintConfig::medium(), NoiseModel::default(), 5, &trace);
    let (reference, _) = pruned_attention(
        trace.q(),
        trace.k(),
        trace.v(),
        &trace.config(),
        trace.threshold(),
        Some(&trace.padding()),
    )
    .unwrap();
    let mae = mean_abs_error(&out.output, &reference.output).unwrap();
    assert!(mae < 0.12, "recomputed output diverges: mae {mae}");
}

#[test]
fn memory_side_reuse_matches_trace_locality() {
    // The memory controller's reuse fraction should track the trace's
    // adjacent-query overlap statistic.
    let trace = bert_trace(128, 33);
    let out = run_sprint(SprintConfig::medium(), NoiseModel::ideal(), 5, &trace);
    let stats = out.memory_stats;
    let reuse =
        stats.reused_vectors as f64 / (stats.reused_vectors + stats.fetched_vectors).max(1) as f64;
    let overlap = trace.stats().mean_adjacent_overlap;
    assert!(
        (reuse - overlap).abs() < 0.15,
        "memory reuse {reuse} vs trace overlap {overlap}"
    );
}

#[test]
fn sprint_decisions_drive_both_memory_and_compute_consistently() {
    let trace = bert_trace(80, 34);
    let out = run_sprint(SprintConfig::small(), NoiseModel::ideal(), 9, &trace);
    // Every kept decision appears as either a fetch or a reuse in the
    // memory stats.
    let kept_total: u64 = out.decisions.iter().map(|d| d.kept_count() as u64).sum();
    assert_eq!(
        kept_total,
        out.memory_stats.fetched_vectors + out.memory_stats.reused_vectors,
        "memory accounting must cover exactly the kept set"
    );
    // And the ReRAM side thresholded every live query.
    assert_eq!(out.prune_stats.queries_pruned as usize, trace.live_tokens());
}

#[test]
fn model_server_serves_the_four_pipelines_end_to_end() {
    // One server, one model, all four pipelines side by side — the
    // model-level serving shape. The layers × heads decomposition is
    // the server's job now (no hand-rolled iteration here), and the
    // mode contrast must still show the paper's story at model
    // granularity: pruning cuts data movement, recompute restores
    // decision fidelity.
    let server = ModelServer::new(
        Engine::builder(SprintConfig::medium())
            .noise(NoiseModel::default())
            .seed(77)
            .build()
            .unwrap(),
    );
    let profile = ModelProfile::from_model(&ModelConfig::bert_base())
        .with_heads(2)
        .with_layer_seq_lens(vec![96, 64]); // ragged encoder stack
    let serve = |mode: ExecutionMode| -> ModelResponse {
        server
            .serve(
                &ModelRequest::new(profile.clone())
                    .with_seed(40)
                    .with_mode(mode)
                    .with_accuracy(true),
            )
            .unwrap()
    };
    let [dense, oracle, no_rec, sprint] = ExecutionMode::ALL.map(serve);

    // Data movement: the dense baseline touches every live key, SPRINT
    // fetches a fraction of them.
    let touched = |r: &ModelResponse| r.total.fetched_vectors + r.total.reused_vectors;
    assert!(
        touched(&dense) > touched(&sprint),
        "pruning cuts key traffic"
    );
    assert!(
        dense.total.bytes_fetched > sprint.total.bytes_fetched,
        "pruning cuts bytes moved"
    );
    assert!((dense.total.kept_fraction() - 1.0).abs() < 1e-12);
    assert!(oracle.total.kept_fraction() < 1.0, "oracle prunes");
    assert!(
        dense.total.energy.total() > sprint.total.energy.total(),
        "pruning cuts counted energy"
    );
    assert!(
        dense.total.cycles > sprint.total.cycles,
        "and counted latency"
    );

    // Fidelity: recompute restores the runtime-pruning decision level;
    // approximate analog scores alone agree less with the dense
    // predictions.
    let agreement = |r: &ModelResponse| r.total.accuracy().unwrap().agreement;
    assert!(
        agreement(&sprint) + 1e-9 >= agreement(&no_rec),
        "recompute agreement {} must not trail no-recompute {}",
        agreement(&sprint),
        agreement(&no_rec)
    );
    assert!(
        (agreement(&sprint) - agreement(&oracle)).abs() < 0.12,
        "SPRINT ({}) tracks runtime pruning ({})",
        agreement(&sprint),
        agreement(&oracle)
    );

    // Strict head-level recompute guard: for one head of the same
    // plan, the recomputed output must be strictly closer to the
    // oracle's than the raw analog scores are — a silently disabled
    // recompute stage cannot hide behind the aggregate agreement
    // means above.
    let plan = ModelRequest::new(profile.clone())
        .with_seed(40)
        .head_plan()
        .remove(0);
    let head_trace = TraceGenerator::new(plan.trace_seed)
        .generate(&plan.spec)
        .unwrap();
    let run_mode = |mode: ExecutionMode| {
        server
            .engine()
            .run_head(
                &HeadRequest::from_trace(&head_trace)
                    .with_head_id(plan.head_id)
                    .with_mode(mode),
            )
            .unwrap()
    };
    let oracle_out = run_mode(ExecutionMode::Oracle);
    let err_sprint =
        mean_abs_error(&run_mode(ExecutionMode::Sprint).output, &oracle_out.output).unwrap();
    let err_no_rec = mean_abs_error(
        &run_mode(ExecutionMode::NoRecompute).output,
        &oracle_out.output,
    )
    .unwrap();
    assert!(
        err_no_rec > err_sprint,
        "no-recompute ({err_no_rec}) must be strictly worse than recompute ({err_sprint})"
    );

    // The analog side thresholded every live query of every head, and
    // the digital baseline never touched the ReRAM pruner.
    assert_eq!(dense.total.queries_pruned, 0);
    let live = |s: usize| (s as f64 * (1.0 - 0.46f64)).round() as u64;
    assert_eq!(
        sprint.total.queries_pruned,
        2 * (live(96) + live(64)),
        "two heads per layer, every live query thresholded"
    );

    // Roll-up consistency: layers merge to the total.
    for r in [&dense, &oracle, &no_rec, &sprint] {
        assert_eq!(r.layers.len(), 2);
        assert_eq!(r.layers[0].seq_len, 96);
        assert_eq!(r.layers[1].seq_len, 64);
        let mut merged = sprint_engine::PerfRollup::default();
        for layer in &r.layers {
            merged.merge(&layer.perf);
        }
        assert_eq!(merged, r.total);
    }
}

fn submatrix(m: &sprint_attention::Matrix, rows: usize) -> sprint_attention::Matrix {
    let mut out = sprint_attention::Matrix::zeros(rows, m.cols()).unwrap();
    for r in 0..rows {
        out.row_mut(r).copy_from_slice(m.row(r));
    }
    out
}
