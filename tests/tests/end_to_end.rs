//! Cross-crate integration: the full functional pipeline against the
//! analytical reference implementations.

use sprint_attention::{mean_abs_error, prune_set_overlap, pruned_attention, PruneDecision};
use sprint_core::SprintConfig;
use sprint_engine::{Engine, ExecutionMode, HeadRequest, HeadResponse};
use sprint_reram::{InMemoryPruner, NoiseModel, ThresholdSpec};
use sprint_workloads::{ModelConfig, TraceGenerator};

fn bert_trace(seq: usize, seed: u64) -> sprint_workloads::HeadTrace {
    let spec = ModelConfig::bert_base().trace_spec().with_seq_len(seq);
    TraceGenerator::new(seed).generate(&spec).unwrap()
}

/// One SPRINT-mode head through an engine built for `config`.
fn run_sprint(
    config: SprintConfig,
    noise: NoiseModel,
    seed: u64,
    trace: &sprint_workloads::HeadTrace,
) -> HeadResponse {
    let engine = Engine::builder(config)
        .noise(noise)
        .mode(ExecutionMode::Sprint)
        .seed(seed)
        .build()
        .unwrap();
    engine.run_head(&HeadRequest::from_trace(trace)).unwrap()
}

#[test]
fn margin_protects_reference_kept_set_across_the_stack() {
    // DESIGN.md invariant 3, end to end: with the 3-sigma margin, the
    // in-memory kept set is (nearly) a superset of the digital one, so
    // recompute can restore the reference output.
    let trace = bert_trace(96, 31);
    let live = trace.live_tokens();
    let noise = NoiseModel::default();
    let mut pruner = InMemoryPruner::new(
        &submatrix(trace.q(), live),
        &submatrix(trace.k(), live),
        trace.config().scale(),
        noise,
        77,
    )
    .unwrap();
    let spec = ThresholdSpec::analog_with_noise_margin(&noise);
    let mut worst_recall = 1.0f64;
    for i in 0..live {
        let outcome = pruner
            .prune_query(trace.q().row(i), trace.threshold(), &spec)
            .unwrap();
        // Digital reference on the live region.
        let reference = PruneDecision::new(
            (0..live)
                .map(|j| trace.reference_decisions()[i].is_pruned(j))
                .collect(),
        );
        let recall = prune_set_overlap(&reference, &outcome.decision);
        worst_recall = worst_recall.min(recall);
    }
    // The margin protects against analog noise; the 4-bit MSB
    // approximation itself can still flip a few borderline keys.
    assert!(worst_recall > 0.85, "worst per-query recall {worst_recall}");
}

#[test]
fn sprint_system_output_matches_runtime_pruning_reference() {
    let trace = bert_trace(96, 32);
    let out = run_sprint(SprintConfig::medium(), NoiseModel::default(), 5, &trace);
    let (reference, _) = pruned_attention(
        trace.q(),
        trace.k(),
        trace.v(),
        &trace.config(),
        trace.threshold(),
        Some(&trace.padding()),
    )
    .unwrap();
    let mae = mean_abs_error(&out.output, &reference.output).unwrap();
    assert!(mae < 0.12, "recomputed output diverges: mae {mae}");
}

#[test]
fn memory_side_reuse_matches_trace_locality() {
    // The memory controller's reuse fraction should track the trace's
    // adjacent-query overlap statistic.
    let trace = bert_trace(128, 33);
    let out = run_sprint(SprintConfig::medium(), NoiseModel::ideal(), 5, &trace);
    let stats = out.memory_stats;
    let reuse =
        stats.reused_vectors as f64 / (stats.reused_vectors + stats.fetched_vectors).max(1) as f64;
    let overlap = trace.stats().mean_adjacent_overlap;
    assert!(
        (reuse - overlap).abs() < 0.15,
        "memory reuse {reuse} vs trace overlap {overlap}"
    );
}

#[test]
fn sprint_decisions_drive_both_memory_and_compute_consistently() {
    let trace = bert_trace(80, 34);
    let out = run_sprint(SprintConfig::small(), NoiseModel::ideal(), 9, &trace);
    // Every kept decision appears as either a fetch or a reuse in the
    // memory stats.
    let kept_total: u64 = out.decisions.iter().map(|d| d.kept_count() as u64).sum();
    assert_eq!(
        kept_total,
        out.memory_stats.fetched_vectors + out.memory_stats.reused_vectors,
        "memory accounting must cover exactly the kept set"
    );
    // And the ReRAM side thresholded every live query.
    assert_eq!(out.prune_stats.queries_pruned as usize, trace.live_tokens());
}

#[test]
fn engine_serves_a_mixed_batch_end_to_end() {
    // One engine, one batch, all four pipelines side by side — the
    // serving shape of the redesigned API. The mode contrast must show
    // the paper's data-movement story: the dense baseline touches every
    // live key, SPRINT fetches a fraction of them.
    let traces: Vec<_> = (0..2).map(|i| bert_trace(96, 40 + i)).collect();
    let engine = Engine::builder(SprintConfig::medium())
        .noise(NoiseModel::default())
        .seed(77)
        .build()
        .unwrap();
    let mut requests = Vec::new();
    for trace in &traces {
        for mode in ExecutionMode::ALL {
            requests.push(HeadRequest::from_trace(trace).with_mode(mode));
        }
    }
    let responses = engine.run_batch(&requests).unwrap();
    assert_eq!(responses.len(), requests.len());
    for (chunk, trace) in responses.chunks(4).zip(&traces) {
        let (dense, oracle, no_rec, sprint) = (&chunk[0], &chunk[1], &chunk[2], &chunk[3]);
        let touched =
            |r: &HeadResponse| r.memory_stats.fetched_vectors + r.memory_stats.reused_vectors;
        assert!(touched(dense) > touched(sprint), "pruning cuts key traffic");
        assert!(
            dense.memory_stats.bytes_fetched > sprint.memory_stats.bytes_fetched,
            "pruning cuts bytes moved"
        );
        // Recompute beats raw analog scores against the oracle output.
        let err_sprint = mean_abs_error(&sprint.output, &oracle.output).unwrap();
        let err_no_rec = mean_abs_error(&no_rec.output, &oracle.output).unwrap();
        assert!(
            err_no_rec > err_sprint,
            "no-recompute ({err_no_rec}) must be worse than recompute ({err_sprint})"
        );
        assert_eq!(dense.prune_stats.queries_pruned, 0);
        assert_eq!(
            sprint.prune_stats.queries_pruned,
            trace.live_tokens() as u64
        );
    }
}

fn submatrix(m: &sprint_attention::Matrix, rows: usize) -> sprint_attention::Matrix {
    let mut out = sprint_attention::Matrix::zeros(rows, m.cols()).unwrap();
    for r in 0..rows {
        out.row_mut(r).copy_from_slice(m.row(r));
    }
    out
}
