//! Integration of the accuracy pipeline: Fig. 5 / Fig. 9 claims at a
//! scale above the unit tests.

use sprint_core::{bit_sensitivity, evaluate_scenarios};
use sprint_workloads::ModelConfig;

#[test]
fn recompute_closes_the_gap_on_every_classification_model() {
    for (i, model) in ModelConfig::real_models().into_iter().enumerate() {
        if model.is_generative() {
            continue;
        }
        let s = evaluate_scenarios(&model, Some(128), 0x77 + i as u64).unwrap();
        // Fig. 9 orderings: recompute dominates no-recompute, and
        // SPRINT sits at the runtime-pruning level (the paper's 0.22%
        // average gap; proxy magnitudes are larger, orderings hold).
        assert!(
            s.sprint.agreement + 1e-9 >= s.sprint_no_recompute.agreement,
            "{}: recompute agreement {} below no-recompute {}",
            model.name,
            s.sprint.agreement,
            s.sprint_no_recompute.agreement
        );
        let parity = (s.sprint.accuracy - s.runtime_pruning.accuracy).abs();
        assert!(
            parity < 0.1,
            "{}: SPRINT ({}) vs runtime pruning ({})",
            model.name,
            s.sprint.accuracy,
            s.runtime_pruning.accuracy
        );
        let gap = (s.baseline.accuracy - s.sprint.accuracy).abs();
        assert!(gap < 0.2, "{}: SPRINT gap {gap}", model.name);
    }
}

#[test]
fn four_bits_reach_the_accuracy_plateau() {
    // Fig. 5's conclusion — the design decision behind 4-bit MLC keys.
    let model = ModelConfig::bert_base();
    let sweep = bit_sensitivity(&model, Some(128), 8, 0x51).unwrap();
    let acc = |b: u32| sweep[(b - 1) as usize].1;
    let plateau = (acc(6) + acc(7) + acc(8)) / 3.0;
    assert!(
        acc(4) > plateau - 0.08,
        "4-bit {} vs plateau {plateau}",
        acc(4)
    );
    assert!(
        acc(1) < plateau - 0.2,
        "1-bit must collapse, got {}",
        acc(1)
    );
}
