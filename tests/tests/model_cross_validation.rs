//! Cross-validation between the two simulation fidelities: the
//! operation-counting model (used for the paper's figures) and the
//! functional system running real data through the cycle-accounted
//! memory controller.

use sprint_core::counting::{simulate_head, ExecutionMode};
use sprint_core::{HeadProfile, SprintConfig};
use sprint_engine::{Engine, HeadRequest};
use sprint_reram::NoiseModel;
use sprint_workloads::{ModelConfig, TraceGenerator};

#[test]
fn counting_and_functional_fetch_counts_agree_at_ample_capacity() {
    // With buffers larger than the live region, both models reduce to
    // pure SLD behaviour over the same decisions, so the fetch/reuse
    // split must agree closely (the functional run uses noisy analog
    // decisions; the counting model uses the digital reference).
    let spec = ModelConfig::bert_base().trace_spec().with_seq_len(96);
    let trace = TraceGenerator::new(0xcafe).generate(&spec).unwrap();
    let cfg = SprintConfig::large(); // 512 pairs >> 52 live tokens

    let engine = Engine::builder(cfg.clone())
        .noise(NoiseModel::ideal())
        .mode(sprint_engine::ExecutionMode::Sprint)
        .seed(3)
        .build()
        .unwrap();
    let functional = engine.run_head(&HeadRequest::from_trace(&trace)).unwrap();

    let profile = HeadProfile::from_trace(&trace);
    let counted = simulate_head(&profile, &cfg, ExecutionMode::Sprint);

    let f_fetched = functional.memory_stats.fetched_vectors as f64;
    let c_fetched = counted.fetched_pairs as f64;
    assert!(
        (f_fetched - c_fetched).abs() / c_fetched.max(1.0) < 0.25,
        "functional fetched {f_fetched} vs counted {c_fetched}"
    );

    let f_total = functional.memory_stats.fetched_vectors + functional.memory_stats.reused_vectors;
    let c_total = counted.fetched_pairs + counted.reused_pairs;
    assert!(
        (f_total as f64 - c_total as f64).abs() / (c_total.max(1) as f64) < 0.1,
        "total kept accesses: functional {f_total} vs counted {c_total}"
    );
}

#[test]
fn counting_compute_counts_match_reference_decisions_exactly() {
    let spec = ModelConfig::vit_base().trace_spec().with_seq_len(80);
    let trace = TraceGenerator::new(0xbeef).generate(&spec).unwrap();
    let profile = HeadProfile::from_trace(&trace);
    let counted = simulate_head(&profile, &SprintConfig::medium(), ExecutionMode::Sprint);
    let kept_total: u64 = trace
        .reference_decisions()
        .iter()
        .map(|d| d.kept_count() as u64)
        .sum();
    assert_eq!(counted.qk_dots, kept_total);
    assert_eq!(counted.vpu_dots, kept_total);
    assert_eq!(counted.softmax_ops, kept_total);
}

#[test]
fn cycle_level_memory_controller_sets_a_consistent_latency_floor() {
    // The counting model's per-query memory cycles must not be wildly
    // optimistic against the cycle-level controller: run the same
    // pruning vectors through `sprint-memory` and compare per-query
    // streaming time for the fetch-heavy first query.
    use sprint_memory::MemoryController;
    let spec = ModelConfig::bert_base().trace_spec().with_seq_len(96);
    let trace = TraceGenerator::new(0xfeed).generate(&spec).unwrap();
    let cfg = SprintConfig::small();
    let mut mc = MemoryController::new(cfg.memory_geometry(), cfg.timing).unwrap();
    let live = trace.live_tokens();
    let d0: Vec<bool> = (0..live)
        .map(|j| trace.reference_decisions()[0].is_pruned(j))
        .collect();
    let outcome = mc.process_query(&d0).unwrap();
    let kept0 = trace.reference_decisions()[0].kept_count() as f64;
    // Cycle-level cost of the cold query: thresholding handshake plus
    // the fetch stream. The counting model charges cpp cycles/pair.
    let cycle_cost = outcome.finish.as_u64() as f64;
    let counting_cost = kept0 * cfg.cycles_per_pair();
    assert!(
        cycle_cost > counting_cost * 0.5,
        "cycle-level {cycle_cost} vs counting {counting_cost}: counting must not be >2x optimistic"
    );
    assert!(
        cycle_cost < counting_cost * 40.0,
        "cycle-level {cycle_cost} should stay within an order of magnitude of counting {counting_cost}"
    );
}
