//! End-to-end tests of the HTTP serving front end over real sockets.
//!
//! Each test boots a [`sprint_server::Server`] on an ephemeral
//! loopback port and talks to it with the vendored [`minihttp`]
//! client — the exact path production traffic takes.

use sprint_engine::{Engine, ModelProfile, ModelRequest, ModelServer, SprintConfig};
use sprint_server::{Json, Server, ServerConfig};
use sprint_workloads::ModelConfig;
use std::time::Duration;

fn small_engine(seed: u64) -> Engine {
    Engine::builder(SprintConfig::small())
        .seed(seed)
        .build()
        .expect("engine builds")
}

fn boot(config: ServerConfig) -> Server {
    Server::start(small_engine(7), config).expect("server binds an ephemeral port")
}

fn client(server: &Server) -> minihttp::Client {
    minihttp::Client::connect(server.local_addr().to_string())
        .with_read_timeout(Some(Duration::from_secs(60)))
}

#[test]
fn health_and_metrics_respond() {
    let server = boot(ServerConfig::default());
    let mut client = client(&server);

    let health = client.get("/health").expect("health responds");
    assert_eq!(health.status, 200);
    let body = Json::parse(&health.body_str()).expect("health body is JSON");
    assert_eq!(body.str_field("status"), Some("ok"));

    let metrics = client.get("/metrics").expect("metrics responds");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    for family in [
        "sprint_requests_admitted_total",
        "sprint_requests_rejected_total",
        "sprint_queue_depth",
        "sprint_request_latency_ms{quantile=\"0.99\"}",
        "sprint_fault_cells_detected_total",
        "sprint_heads_demoted_total",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }

    let missing = client.get("/nope").expect("unknown route responds");
    assert_eq!(missing.status, 404);
    server.shutdown();
}

#[test]
fn serve_over_http_is_bit_identical_to_direct_calls() {
    let server = boot(ServerConfig::default());
    let mut client = client(&server);
    let response = client
        .post_json(
            "/v1/serve",
            r#"{"model":"vit_base","layers":1,"heads":2,"seq_len":32,"seed":11}"#,
        )
        .expect("serve responds");
    assert_eq!(response.status, 200, "{}", response.body_str());
    let body = Json::parse(&response.body_str()).expect("serve body is JSON");
    server.shutdown();

    // The same pass, in process, on an identically-seeded engine.
    let direct_server = ModelServer::new(small_engine(7));
    let profile = ModelProfile::from_model(&ModelConfig::vit_base())
        .with_layers(1)
        .with_heads(2)
        .with_seq_len(32);
    let direct = direct_server
        .serve(&ModelRequest::new(profile).with_seed(11))
        .expect("direct serve succeeds");

    let total = body.get("total").expect("response carries a rollup");
    assert_eq!(body.str_field("model"), Some(direct.model.as_str()));
    assert_eq!(total.u64_field("heads"), Some(direct.total.heads));
    assert_eq!(total.u64_field("cycles"), Some(direct.total.cycles));
    assert_eq!(
        total.u64_field("kept_scores"),
        Some(direct.total.kept_scores)
    );
    assert_eq!(
        total.u64_field("bytes_fetched"),
        Some(direct.total.bytes_fetched)
    );
    // Floats render shortest-round-trip, so JSON equality is
    // bit-identity for the energy total too.
    let energy = total.get("energy_pj").and_then(Json::as_f64).unwrap();
    assert_eq!(
        energy.to_bits(),
        direct.total.energy.total().as_pj().to_bits(),
        "energy over HTTP must be bit-identical to the direct call"
    );
}

#[test]
fn decode_sessions_match_direct_sessions_step_for_step() {
    let server = boot(ServerConfig::default());
    let mut client = client(&server);
    let open = client
        .post_json(
            "/v1/decode",
            r#"{"action":"open","model":"bert_base","seq_len":24,"prefill":16,"seed":9}"#,
        )
        .expect("open responds");
    assert_eq!(open.status, 200, "{}", open.body_str());
    let open_body = Json::parse(&open.body_str()).unwrap();
    let session = open_body.u64_field("session").expect("session id");
    assert_eq!(open_body.u64_field("position"), Some(16));

    // Direct twin: same model, seed and prefill on an equal engine.
    let engine = small_engine(7);
    let mut spec = ModelConfig::bert_base().trace_spec().with_seq_len(24);
    spec.padding_fraction = 0.0;
    let trace = sprint_workloads::TraceGenerator::new(9)
        .generate(&spec)
        .unwrap();
    let prefill_k = trace.k().prefix_rows(16).unwrap();
    let prefill_v = trace.v().prefix_rows(16).unwrap();
    let request = sprint_engine::SessionRequest::new(
        &prefill_k,
        &prefill_v,
        trace.config(),
        trace.threshold(),
    )
    .with_head_id(9);
    let mut direct = engine.open_session(&request).unwrap();

    for t in 16..24 {
        let step = client
            .post_json(
                "/v1/decode",
                &format!(r#"{{"action":"step","session":{session}}}"#),
            )
            .expect("step responds");
        assert_eq!(step.status, 200, "{}", step.body_str());
        let step_body = Json::parse(&step.body_str()).unwrap();
        let expected = direct
            .step(&sprint_engine::DecodeStep {
                q: trace.q().row(t),
                k: trace.k().row(t),
                v: trace.v().row(t),
            })
            .unwrap();
        assert_eq!(
            step_body.u64_field("position"),
            Some(expected.position as u64)
        );
        assert_eq!(
            step_body.u64_field("kept"),
            Some(expected.decision.kept_count() as u64)
        );
        let output = match step_body.get("output") {
            Some(Json::Arr(values)) => values,
            other => panic!("output should be an array, got {other:?}"),
        };
        assert_eq!(output.len(), expected.output.len());
        for (got, want) in output.iter().zip(&expected.output) {
            let got = got.as_f64().expect("output values are numbers");
            assert_eq!(
                got.to_bits(),
                f64::from(*want).to_bits(),
                "decode output rows must match bit for bit"
            );
        }
    }

    // The stream is exhausted; another step must 409, and close
    // reports the session totals.
    let exhausted = client
        .post_json(
            "/v1/decode",
            &format!(r#"{{"action":"step","session":{session}}}"#),
        )
        .unwrap();
    assert_eq!(exhausted.status, 409);
    let close = client
        .post_json(
            "/v1/decode",
            &format!(r#"{{"action":"close","session":{session}}}"#),
        )
        .unwrap();
    assert_eq!(close.status, 200);
    let close_body = Json::parse(&close.body_str()).unwrap();
    assert_eq!(close_body.u64_field("tokens"), Some(8));
    server.shutdown();
}

#[test]
fn resident_cap_evicts_and_rehydrates_sessions_transparently() {
    // Four concurrent decode streams over a cap of two resident
    // sessions: every step beyond the cap forces an LRU eviction, and
    // stepping an evicted session rehydrates it behind the same URL.
    // The tracked stream must stay bit-identical to a direct in-process
    // twin the whole time (under the ideal noise model — rehydration
    // reprograms crossbars, so analog noise would re-draw there).
    let engine = Engine::builder(SprintConfig::small())
        .seed(7)
        .noise(sprint_reram::NoiseModel::ideal())
        .kv_pool(sprint_attention::PagePool::unbounded(640))
        .build()
        .unwrap();
    let server = Server::start(
        engine,
        ServerConfig {
            max_resident_sessions: Some(2),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let mut client = client(&server);

    let mut ids = Vec::new();
    for seed in [11u64, 12, 13, 14] {
        let open = client
            .post_json(
                "/v1/decode",
                &format!(
                    r#"{{"action":"open","model":"bert_base","seq_len":24,"prefill":16,"seed":{seed}}}"#
                ),
            )
            .expect("open responds");
        assert_eq!(open.status, 200, "{}", open.body_str());
        ids.push(
            Json::parse(&open.body_str())
                .unwrap()
                .u64_field("session")
                .unwrap(),
        );
    }

    // Direct twin of the first stream (seed 11, head id 11), stepped in
    // lockstep with the HTTP session.
    let twin_engine = Engine::builder(SprintConfig::small())
        .seed(7)
        .noise(sprint_reram::NoiseModel::ideal())
        .build()
        .unwrap();
    let mut spec = ModelConfig::bert_base().trace_spec().with_seq_len(24);
    spec.padding_fraction = 0.0;
    let trace = sprint_workloads::TraceGenerator::new(11)
        .generate(&spec)
        .unwrap();
    let prefill_k = trace.k().prefix_rows(16).unwrap();
    let prefill_v = trace.v().prefix_rows(16).unwrap();
    let mut twin = twin_engine
        .open_session(
            &sprint_engine::SessionRequest::new(
                &prefill_k,
                &prefill_v,
                trace.config(),
                trace.threshold(),
            )
            .with_head_id(11),
        )
        .unwrap();

    for t in 16..24 {
        for (i, id) in ids.iter().enumerate() {
            let step = client
                .post_json(
                    "/v1/decode",
                    &format!(r#"{{"action":"step","session":{id}}}"#),
                )
                .expect("step responds");
            assert_eq!(
                step.status,
                200,
                "session {i} step {t}: {}",
                step.body_str()
            );
            if i == 0 {
                let expected = twin
                    .step(&sprint_engine::DecodeStep {
                        q: trace.q().row(t),
                        k: trace.k().row(t),
                        v: trace.v().row(t),
                    })
                    .unwrap();
                let step_body = Json::parse(&step.body_str()).unwrap();
                let output = match step_body.get("output") {
                    Some(Json::Arr(values)) => values,
                    other => panic!("output should be an array, got {other:?}"),
                };
                assert_eq!(output.len(), expected.output.len());
                for (got, want) in output.iter().zip(&expected.output) {
                    let got = got.as_f64().expect("output values are numbers");
                    assert_eq!(
                        got.to_bits(),
                        f64::from(*want).to_bits(),
                        "step {t}: rehydrated stream diverged from the direct twin"
                    );
                }
            }
        }
    }

    let mut evictions = 0u64;
    let mut rehydrations = 0u64;
    for id in &ids {
        let close = client
            .post_json(
                "/v1/decode",
                &format!(r#"{{"action":"close","session":{id}}}"#),
            )
            .unwrap();
        assert_eq!(close.status, 200);
        let body = Json::parse(&close.body_str()).unwrap();
        assert_eq!(body.u64_field("tokens"), Some(8));
        evictions += body.u64_field("evictions").unwrap();
        rehydrations += body.u64_field("rehydrations").unwrap();
    }
    assert!(
        evictions > 0 && rehydrations > 0,
        "4 round-robin streams over a cap of 2 must churn \
         (evictions {evictions}, rehydrations {rehydrations})"
    );

    let metrics = client.get("/metrics").unwrap().body_str();
    let sample = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("{name} ")))
            .and_then(|l| l.rsplit(' ').next()?.parse().ok())
            .unwrap_or_else(|| panic!("missing {name} in:\n{metrics}"))
    };
    assert_eq!(sample("sprint_sessions_evicted_total"), evictions);
    assert_eq!(sample("sprint_sessions_rehydrated_total"), rehydrations);
    assert_eq!(sample("sprint_kv_pages_in_use"), 0, "all sessions closed");
    assert_eq!(sample("sprint_kv_pages_capacity"), 0, "pool is unbounded");
    server.shutdown();
}

#[test]
fn pool_exhaustion_409s_only_when_nothing_is_evictable() {
    // An 8-page pool at one token per page: sessions that fit keep
    // being served by evicting colder ones; only a request that cannot
    // fit even in an empty pool is refused, with 409 + Retry-After.
    let engine = Engine::builder(SprintConfig::small())
        .seed(7)
        .kv_pool(sprint_attention::PagePool::bounded(640, 8))
        .build()
        .unwrap();
    let server = Server::start(engine, ServerConfig::default()).expect("server binds");
    let mut client = client(&server);
    let open = |client: &mut minihttp::Client, seq: usize, prefill: usize, seed: u64| {
        client
            .post_json(
                "/v1/decode",
                &format!(
                    r#"{{"action":"open","model":"bert_base","seq_len":{seq},"prefill":{prefill},"seed":{seed}}}"#
                ),
            )
            .expect("open responds")
    };

    // Two 4-page prefills fill the pool exactly; the third open must
    // evict one of them rather than fail.
    let a = open(&mut client, 8, 4, 1);
    assert_eq!(a.status, 200, "{}", a.body_str());
    let a = Json::parse(&a.body_str())
        .unwrap()
        .u64_field("session")
        .unwrap();
    assert_eq!(open(&mut client, 8, 4, 2).status, 200);
    let c = open(&mut client, 8, 4, 3);
    assert_eq!(
        c.status,
        200,
        "a full pool with evictable sessions must make room: {}",
        c.body_str()
    );

    // A 16-token prefill exceeds the 8-page pool outright: even after
    // evicting everything there is no room, so this — and only this —
    // is refused.
    let refused = open(&mut client, 24, 16, 4);
    assert_eq!(refused.status, 409, "{}", refused.body_str());
    assert!(
        refused.header("Retry-After").is_some(),
        "pool-exhausted 409 must carry Retry-After"
    );

    // Session A was evicted above; stepping it rehydrates and serves.
    for _ in 4..8 {
        let step = client
            .post_json(
                "/v1/decode",
                &format!(r#"{{"action":"step","session":{a}}}"#),
            )
            .expect("step responds");
        assert_eq!(step.status, 200, "{}", step.body_str());
    }
    let close = client
        .post_json(
            "/v1/decode",
            &format!(r#"{{"action":"close","session":{a}}}"#),
        )
        .unwrap();
    assert_eq!(close.status, 200);
    let body = Json::parse(&close.body_str()).unwrap();
    assert_eq!(body.u64_field("tokens"), Some(4));
    assert!(
        body.u64_field("rehydrations").unwrap() >= 1,
        "session A must have been rebuilt after its eviction"
    );
    server.shutdown();
}

#[test]
fn overload_sheds_with_429_and_retry_after() {
    // One slow batch at a time (50 ms service delay), one-deep queues:
    // concurrent clients beyond ~3 in flight must see 429s.
    let server = boot(ServerConfig {
        http_threads: 10,
        max_batch: 1,
        queue_per_tenant: 1,
        queue_global: 1,
        service_delay: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client =
                minihttp::Client::connect(addr).with_read_timeout(Some(Duration::from_secs(60)));
            let mut statuses = Vec::new();
            for _ in 0..3 {
                let response = client
                    .post_json(
                        "/v1/serve",
                        r#"{"model":"synth1","layers":1,"heads":1,"seq_len":16,"seed":3}"#,
                    )
                    .expect("serve responds even when shedding");
                if response.status == 429 {
                    assert!(
                        response.header("Retry-After").is_some(),
                        "429 must carry Retry-After"
                    );
                }
                statuses.push(response.status);
            }
            statuses
        }));
    }
    let statuses: Vec<u16> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let served = statuses.iter().filter(|&&s| s == 200).count();
    let shed = statuses.iter().filter(|&&s| s == 429).count();
    assert!(
        served > 0,
        "some requests must still be served: {statuses:?}"
    );
    assert!(
        shed > 0,
        "queues of one must shed 24 rushed requests: {statuses:?}"
    );
    assert_eq!(served + shed, statuses.len(), "only 200/429: {statuses:?}");

    // The metrics exposition reflects the shed.
    let mut client = minihttp::Client::connect(addr);
    let metrics = client.get("/metrics").unwrap().body_str();
    let rejected: u64 = metrics
        .lines()
        .find(|l| l.starts_with("sprint_requests_rejected_total "))
        .and_then(|l| l.rsplit(' ').next()?.parse().ok())
        .expect("rejected counter present");
    assert!(rejected >= shed as u64);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    // A request enters the (slow) batcher; shutdown must wait for it.
    let server = boot(ServerConfig {
        service_delay: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let in_flight = std::thread::spawn(move || {
        let mut client =
            minihttp::Client::connect(addr).with_read_timeout(Some(Duration::from_secs(60)));
        client
            .post_json(
                "/v1/serve",
                r#"{"model":"synth1","layers":1,"heads":1,"seq_len":16,"seed":3}"#,
            )
            .expect("in-flight request survives the shutdown")
    });
    // Let the request get admitted before shutting down.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    let response = in_flight.join().expect("client thread");
    assert_eq!(
        response.status,
        200,
        "admitted work must complete during drain: {}",
        response.body_str()
    );
}

#[test]
fn draining_server_refuses_new_work_with_503() {
    let server = boot(ServerConfig {
        service_delay: Some(Duration::from_millis(400)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    // Park one request so the shutdown has something to drain.
    let parked = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client =
                minihttp::Client::connect(addr).with_read_timeout(Some(Duration::from_secs(60)));
            client
                .post_json(
                    "/v1/serve",
                    r#"{"model":"synth1","layers":1,"heads":1,"seq_len":16,"seed":3}"#,
                )
                .expect("parked request completes")
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    // Shut down concurrently; probe while the drain is in progress.
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(50));
    let mut probe =
        minihttp::Client::connect(addr).with_read_timeout(Some(Duration::from_secs(10)));
    if let Ok(response) = probe.post_json(
        "/v1/serve",
        r#"{"model":"synth1","layers":1,"heads":1,"seq_len":16,"seed":3}"#,
    ) {
        // Either the probe raced in before the close (200) or it was
        // refused while draining (503 + Retry-After); it must never
        // hang or crash the server.
        assert!(
            response.status == 503 || response.status == 200,
            "draining server answered {}",
            response.status
        );
        if response.status == 503 {
            assert!(response.header("Retry-After").is_some());
        }
    }
    assert_eq!(parked.join().expect("parked thread").status, 200);
    shutdown.join().expect("shutdown completes");
}

#[test]
fn malformed_bodies_get_400_not_a_hang() {
    let server = boot(ServerConfig::default());
    let mut client = client(&server);
    for (body, needle) in [
        ("{not json", "invalid JSON"),
        (r#"{"model":"unknown_model"}"#, "unknown model"),
        (r#"{}"#, "missing 'model'"),
    ] {
        let response = client.post_json("/v1/serve", body).expect("error responds");
        assert_eq!(response.status, 400, "{body}");
        assert!(
            response.body_str().contains(needle),
            "{body}: {}",
            response.body_str()
        );
    }
    let response = client
        .post_json("/v1/decode", r#"{"action":"step","session":999}"#)
        .unwrap();
    assert_eq!(response.status, 404, "unknown session");
    server.shutdown();
}
