//! Failure injection: the stack must reject malformed inputs with
//! useful errors rather than panicking or silently mis-computing.

use sprint_attention::Matrix;
use sprint_core::SprintConfig;
use sprint_memory::{MemoryController, MemoryGeometry};
use sprint_reram::{InMemoryPruner, NoiseModel, ThresholdSpec};
use sprint_workloads::{TraceGenerator, TraceSpec};

#[test]
fn pruning_vector_length_drift_is_caught_at_the_controller() {
    let mut mc = MemoryController::new(
        MemoryGeometry::default(),
        sprint_energy::TimingParams::default(),
    )
    .unwrap();
    mc.process_query(&[false; 32]).unwrap();
    let err = mc.process_query(&[false; 33]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("length"), "unhelpful error: {msg}");
}

#[test]
fn pruner_rejects_mismatched_query_dimensions() {
    let k = Matrix::from_vec(8, 16, vec![0.1; 128]).unwrap();
    let q = Matrix::from_vec(4, 16, vec![0.1; 64]).unwrap();
    let mut pruner = InMemoryPruner::new(&q, &k, 0.25, NoiseModel::ideal(), 1).unwrap();
    // Wrong-length query row.
    assert!(pruner
        .prune_query(&[0.0; 8], 0.0, &ThresholdSpec::default())
        .is_err());
    // Invalid quantization request.
    assert!(pruner
        .prune_query(&[0.0; 16], 0.0, &ThresholdSpec::quantized(0))
        .is_err());
}

#[test]
fn trace_generator_rejects_degenerate_specs() {
    let bad_specs = [
        TraceSpec {
            seq_len: 0,
            head_dim: 16,
            prune_rate: 0.5,
            padding_fraction: 0.0,
            target_overlap: 0.8,
        },
        TraceSpec {
            seq_len: 32,
            head_dim: 16,
            prune_rate: 1.0,
            padding_fraction: 0.0,
            target_overlap: 0.8,
        },
        TraceSpec {
            seq_len: 32,
            head_dim: 16,
            prune_rate: 0.5,
            padding_fraction: 1.5,
            target_overlap: 0.8,
        },
    ];
    for spec in bad_specs {
        assert!(
            TraceGenerator::new(1).generate(&spec).is_err(),
            "spec {spec:?} must be rejected"
        );
    }
}

#[test]
fn degenerate_configurations_still_simulate() {
    // A 1 KiB buffer (8 pairs) and a 1-token sequence must not panic
    // anywhere in the counting simulator.
    use sprint_core::counting::{simulate_head, ExecutionMode};
    use sprint_core::HeadProfile;
    let mut cfg = SprintConfig::small();
    cfg.onchip_kib = 1;
    let tiny = HeadProfile::synthetic(1, 1, 1.0, 1.0, 1);
    for mode in [
        ExecutionMode::Baseline,
        ExecutionMode::MaskOnly,
        ExecutionMode::PruningOnly,
        ExecutionMode::Sprint,
    ] {
        let perf = simulate_head(&tiny, &cfg, mode);
        assert!(perf.energy.total().as_pj() > 0.0, "{mode:?}");
    }
    let starved = HeadProfile::synthetic(512, 512, 0.5, 0.9, 2);
    let perf = simulate_head(&starved, &cfg, ExecutionMode::Sprint);
    assert!(perf.fetched_pairs > 0);
}

#[test]
fn fully_pruned_queries_flow_through_the_whole_stack() {
    // An in-memory threshold far above every score prunes everything;
    // the system must return all-zero outputs, not NaNs or panics.
    let spec = TraceSpec {
        seq_len: 24,
        head_dim: 16,
        prune_rate: 0.5,
        padding_fraction: 0.0,
        target_overlap: 0.8,
    };
    let trace = TraceGenerator::new(5).generate(&spec).unwrap();
    let mut pruner = InMemoryPruner::new(
        trace.q(),
        trace.k(),
        trace.config().scale(),
        NoiseModel::ideal(),
        7,
    )
    .unwrap();
    let out = pruner
        .prune_query(trace.q().row(0), 1e9, &ThresholdSpec::default())
        .unwrap();
    assert_eq!(out.decision.kept_count(), 0);
    let decisions: Vec<_> = (0..24)
        .map(|_| sprint_attention::PruneDecision::new(vec![true; 24]))
        .collect();
    let result = sprint_attention::quantized_attention(
        trace.q(),
        trace.k(),
        trace.v(),
        &trace.config(),
        Some(&decisions),
    )
    .unwrap();
    for i in 0..24 {
        assert!(
            result.output.row(i).iter().all(|x| x.is_finite()),
            "row {i} contains non-finite values"
        );
        assert!(result.output.row(i).iter().all(|&x| x == 0.0));
    }
}
