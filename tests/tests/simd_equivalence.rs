//! The SIMD differential harness (ISSUE 10 tentpole): every AVX2 lane
//! is proven equivalent to the scalar reference tier it shadows, from
//! raw kernels up through the engine, decode sessions and the model
//! server.
//!
//! # Equivalence contract
//!
//! * **Integer paths are bit-identical.** The quantized comparator /
//!   MAC kernels (`quantized_attention_with`,
//!   `quantized_attention_decode_with`) accumulate i8 products in
//!   i32 — associativity is exact, so every score, probability and
//!   output must match `to_bits()` across tiers.
//! * **Element-wise float staging is bit-identical.** Row max, row
//!   scaling and the prune scan perform the same exact operation per
//!   element in every tier.
//! * **The AV accumulation is tolerance-class.** Both tiers walk keys
//!   in ascending order, but the AVX2 lanes fuse each multiply-add
//!   where the scalar tier rounds the product first — ≤ 0.5 ULP of
//!   drift per accumulation step. Decode (`axpy` per key) and batch
//!   (register-blocked `av_row`) share one chain per tier, so outputs
//!   stay bit-identical *within* a tier.
//! * **The float dot product diverges by ≤ 4 ULP.** The AVX2
//!   `matmul_transposed` reduces through 8 FMA accumulators, so a
//!   score may differ from the scalar sum by a documented ≤ 4-ULP
//!   reassociation error (plus a magnitude-scaled escape hatch for
//!   catastrophic cancellation, where ULP distance is meaningless).
//! * **The float softmax exponent pass is tolerance-class.** The AVX2
//!   tier evaluates a Cephes-style polynomial `exp` eight lanes at a
//!   time with per-lane partial sums (~1e-6 relative vs the scalar
//!   sequential `f32::exp` loop). Masked `-inf` scores still produce
//!   exactly `0.0` probability in every tier, so pruning structure
//!   and sparse-AV skips never diverge. The quantized SPRINT path
//!   uses the integer two-LUT softmax instead and stays bitwise.
//!
//! Everything downstream of a diverged score or probability
//! (float probabilities, float outputs) is therefore compared with a
//! small tolerance rather than bitwise; integer-path results and
//! pruning decisions are compared exactly.
//!
//! Every AVX2-side assertion is gated on
//! [`sprint_attention::avx2_available`]; on non-AVX2 hosts the suite
//! degenerates to scalar-vs-scalar (still a valid, if tautological,
//! run) and prints a note.
//!
//! Geometry sweep: `d ∈ {31, 32, 33, 64, 100, 128}` crosses the 8-lane
//! boundary both ways (31/33), the one-register width (8), the
//! unrolled 64-wide specialization and a 4-remainder tail (100);
//! `s_q ≠ s_k` throughout; padded queries, all-pruned rows and
//! single-token histories ride along.

use proptest::prelude::*;
use sprint_attention::{
    dense_attention_decode_with, dense_attention_with, pruned_attention_decode_cached_with,
    pruned_attention_with, quantized_attention_decode_with, quantized_attention_with, ulp_distance,
    AttentionConfig, KvCache, Matrix, PaddingMask, PruneDecision, SimdTier, Workspace,
};
use sprint_engine::{
    DecodeStep, Engine, ExecutionMode, HeadRequest, ModelProfile, ModelRequest, ModelServer,
    SessionRequest, SprintConfig,
};
use sprint_workloads::{ModelConfig, TraceGenerator};

/// Head dims crossing every lane-count regime of the AVX2 kernels.
const DIMS: [usize; 6] = [31, 32, 33, 64, 100, 128];

/// Rectangular (s_q, s_k) pairs — never square, never lane-aligned on
/// both sides at once.
const SHAPES: [(usize, usize); 4] = [(5, 33), (17, 8), (1, 64), (33, 31)];

/// Deterministic pseudo-random matrix from a seed (splitmix-style).
fn random_matrix(rows: usize, cols: usize, seed: u64, amp: f32) -> Matrix {
    let mut x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(0x2545f4914f6cdd1d);
    let mut next = move || {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 29;
        amp * (((x >> 40) as f32 / 16777216.0) - 0.5)
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
}

/// A pair of workspaces pinned to the two tiers, or `None` when the
/// host cannot execute the AVX2 tier (the differential then has
/// nothing to differentiate).
fn tier_pair() -> Option<(Workspace, Workspace)> {
    if !sprint_attention::avx2_available() {
        eprintln!("note: host lacks AVX2+FMA; simd differential degenerates to scalar-vs-scalar");
        return None;
    }
    let mut scalar = Workspace::new();
    scalar.set_simd_tier(SimdTier::Scalar);
    let mut avx2 = Workspace::new();
    avx2.set_simd_tier(SimdTier::Avx2);
    assert_eq!(scalar.simd_tier(), SimdTier::Scalar);
    assert_eq!(avx2.simd_tier(), SimdTier::Avx2);
    Some((scalar, avx2))
}

/// The documented FMA-dot contract: ≤ 4 ULP apart, or within
/// `4 · ε · Σ|qᵢ·kᵢ|·scale` when cancellation leaves the result too
/// close to zero for ULP distance to mean anything.
fn assert_score_close(s: f32, v: f32, q_row: &[f32], k_row: &[f32], scale: f32, what: &str) {
    if s.to_bits() == v.to_bits() {
        return;
    }
    let mag: f32 = q_row
        .iter()
        .zip(k_row)
        .map(|(a, b)| (a * b).abs())
        .sum::<f32>()
        * scale.abs();
    assert!(
        ulp_distance(s, v) <= 4 || (s - v).abs() <= 4.0 * f32::EPSILON * mag,
        "{what}: scalar {s} vs avx2 {v} ({} ULP apart, mag {mag})",
        ulp_distance(s, v)
    );
}

/// Downstream-of-softmax comparison: probabilities live in [0, 1] and
/// outputs are probability-weighted sums of O(1) values, so a small
/// absolute tolerance (propagated from the ≤ 4-ULP score divergence
/// through exp) is the right yardstick. `NEG_INFINITY` markers (masked
/// scores) must still match exactly.
fn assert_close(a: &Matrix, b: &Matrix, tol: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what} shapes");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let (x, y) = (a.get(r, c), b.get(r, c));
            if x == f32::NEG_INFINITY || y == f32::NEG_INFINITY {
                assert_eq!(x, y, "{what} at ({r},{c}): {x} vs {y}");
            } else {
                assert!(
                    (x - y).abs() <= tol,
                    "{what} diverges at ({r},{c}): {x} vs {y}"
                );
            }
        }
    }
}

fn assert_rows_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len(), "{what} lengths");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= tol, "{what} diverges at {i}: {x} vs {y}");
    }
}

// ---------------------------------------------------------------------------
// Kernel level
// ---------------------------------------------------------------------------

#[test]
fn dense_kernels_hold_the_ulp_contract_across_lane_boundaries() {
    let Some((mut scalar, mut avx2)) = tier_pair() else {
        return;
    };
    for &d in &DIMS {
        for &(s_q, s_k) in &SHAPES {
            for seed in [3u64, 77, 901] {
                let q = random_matrix(s_q, d, seed, 2.0);
                let k = random_matrix(s_k, d, seed ^ 1, 2.0);
                let v = random_matrix(s_k, d, seed ^ 2, 1.0);
                let cfg = AttentionConfig::new(d);
                let s = dense_attention_with(&q, &k, &v, &cfg, &mut scalar).unwrap();
                let a = dense_attention_with(&q, &k, &v, &cfg, &mut avx2).unwrap();
                let scale = cfg.scale();
                for r in 0..s_q {
                    for c in 0..s_k {
                        assert_score_close(
                            s.scores.get(r, c),
                            a.scores.get(r, c),
                            q.row(r),
                            k.row(c),
                            scale,
                            &format!("dense score d={d} ({s_q}x{s_k})"),
                        );
                    }
                }
                assert_close(&s.probs, &a.probs, 1e-5, &format!("dense probs d={d}"));
                assert_close(&s.output, &a.output, 1e-5, &format!("dense output d={d}"));
            }
        }
    }
}

#[test]
fn pruned_kernels_agree_on_decisions_masks_and_all_pruned_rows() {
    let Some((mut scalar, mut avx2)) = tier_pair() else {
        return;
    };
    for &d in &DIMS {
        for &(s_q, s_k) in &SHAPES {
            let q = random_matrix(s_q, d, 11 + d as u64, 2.0);
            let k = random_matrix(s_k, d, 13 + d as u64, 2.0);
            let v = random_matrix(s_k, d, 17 + d as u64, 1.0);
            let cfg = AttentionConfig::new(d);
            // Padded queries: the mask prunes the tail of the key
            // sequence outright (live < s_k exercises the padded
            // region on rectangular shapes).
            let live = s_k - (s_k / 4);
            let mask = PaddingMask::new(s_k, live).unwrap();
            // Arbitrary thresholds — deliberately NOT calibrated from
            // the scores, so no score sits within ULP noise of the
            // cut and decisions must match exactly across tiers.
            for threshold in [-0.6f32, 0.05, 0.7] {
                let (s, sd) =
                    pruned_attention_with(&q, &k, &v, &cfg, threshold, Some(&mask), &mut scalar)
                        .unwrap();
                let (a, ad) =
                    pruned_attention_with(&q, &k, &v, &cfg, threshold, Some(&mask), &mut avx2)
                        .unwrap();
                assert_eq!(sd, ad, "decisions d={d} th={threshold}");
                assert_close(&s.probs, &a.probs, 1e-5, &format!("pruned probs d={d}"));
                assert_close(&s.output, &a.output, 1e-5, &format!("pruned output d={d}"));
            }
            // All-pruned rows: +inf threshold kills every key; both
            // tiers must produce the identical all-pruned decisions
            // and bitwise-zero outputs.
            let (s, sd) =
                pruned_attention_with(&q, &k, &v, &cfg, f32::INFINITY, None, &mut scalar).unwrap();
            let (a, ad) =
                pruned_attention_with(&q, &k, &v, &cfg, f32::INFINITY, None, &mut avx2).unwrap();
            assert_eq!(sd, ad);
            for dec in &sd {
                assert_eq!(dec.kept_count(), 0, "everything pruned at +inf");
            }
            assert_eq!(s.probs, a.probs, "all-pruned probs bitwise d={d}");
            assert_eq!(s.output, a.output, "all-pruned output bitwise d={d}");
        }
    }
}

#[test]
fn quantized_integer_paths_are_bit_identical() {
    let Some((mut scalar, mut avx2)) = tier_pair() else {
        return;
    };
    for &d in &DIMS {
        for &(s_q, s_k) in &SHAPES {
            let q = random_matrix(s_q, d, 23 + d as u64, 2.0);
            let k = random_matrix(s_k, d, 29 + d as u64, 2.0);
            let v = random_matrix(s_k, d, 31 + d as u64, 1.0);
            let cfg = AttentionConfig::new(d);
            // A mixed decision pattern: every third key pruned, plus
            // one fully pruned (padded) query row when there is room.
            let decisions: Vec<PruneDecision> = (0..s_q)
                .map(|i| {
                    if i + 1 == s_q && s_q > 1 {
                        PruneDecision::new(vec![true; s_k])
                    } else {
                        PruneDecision::new((0..s_k).map(|j| (i + j) % 3 == 0).collect())
                    }
                })
                .collect();
            let s =
                quantized_attention_with(&q, &k, &v, &cfg, Some(&decisions), &mut scalar).unwrap();
            let a =
                quantized_attention_with(&q, &k, &v, &cfg, Some(&decisions), &mut avx2).unwrap();
            assert_eq!(s.scores, a.scores, "quantized scores d={d} ({s_q}x{s_k})");
            assert_eq!(s.probs, a.probs, "quantized probs d={d}");
            assert_eq!(s.output, a.output, "quantized output d={d}");
            // And the dense (no-decision) datapath.
            let s = quantized_attention_with(&q, &k, &v, &cfg, None, &mut scalar).unwrap();
            let a = quantized_attention_with(&q, &k, &v, &cfg, None, &mut avx2).unwrap();
            assert_eq!(s.scores, a.scores);
            assert_eq!(s.probs, a.probs);
            assert_eq!(s.output, a.output);
        }
    }
}

#[test]
fn decode_kernels_match_across_tiers_including_grown_histories() {
    let Some((mut scalar, mut avx2)) = tier_pair() else {
        return;
    };
    for &d in &DIMS {
        // Histories straddling the lane boundary, including the
        // single-token case.
        for s_k in [1usize, 7, 32, 33] {
            let q = random_matrix(1, d, 41 + d as u64, 2.0);
            let k = random_matrix(s_k, d, 43 + d as u64, 2.0);
            let v = random_matrix(s_k, d, 47 + d as u64, 1.0);
            let cfg = AttentionConfig::new(d);

            let s_out = dense_attention_decode_with(&q, &k, &v, &cfg, &mut scalar).unwrap();
            let a_out = dense_attention_decode_with(&q, &k, &v, &cfg, &mut avx2).unwrap();
            assert_rows_close(
                &s_out,
                &a_out,
                1e-5,
                &format!("dense decode d={d} s_k={s_k}"),
            );

            let mut kv_s = KvCache::new(&k, &v).unwrap();
            let mut kv_a = KvCache::new(&k, &v).unwrap();
            for threshold in [-0.5f32, 0.3, f32::INFINITY] {
                let (so, sd) =
                    pruned_attention_decode_cached_with(&q, &kv_s, &cfg, threshold, &mut scalar)
                        .unwrap();
                let (ao, ad) =
                    pruned_attention_decode_cached_with(&q, &kv_a, &cfg, threshold, &mut avx2)
                        .unwrap();
                assert_eq!(sd, ad, "decode decisions d={d} th={threshold}");
                if threshold == f32::INFINITY {
                    assert_eq!(so, ao, "all-pruned decode output bitwise");
                } else {
                    assert_rows_close(&so, &ao, 1e-5, &format!("pruned decode d={d}"));
                }
                let decision = sd;
                let so =
                    quantized_attention_decode_with(&q, &kv_s, &cfg, Some(&decision), &mut scalar)
                        .unwrap();
                let ao =
                    quantized_attention_decode_with(&q, &kv_a, &cfg, Some(&decision), &mut avx2)
                        .unwrap();
                assert_eq!(so, ao, "quantized decode bitwise d={d} th={threshold}");
            }

            // Grow both caches by a token and re-check: the appended
            // row lands in the page tail, the exact remainder-lane
            // territory the AVX2 gather has to get right.
            let grow = random_matrix(2, d, 53 + d as u64, 1.5);
            kv_s.push(grow.row(0), grow.row(1)).unwrap();
            kv_a.push(grow.row(0), grow.row(1)).unwrap();
            let so = quantized_attention_decode_with(&q, &kv_s, &cfg, None, &mut scalar).unwrap();
            let ao = quantized_attention_decode_with(&q, &kv_a, &cfg, None, &mut avx2).unwrap();
            assert_eq!(so, ao, "quantized decode after push d={d}");
        }
    }
}

// ---------------------------------------------------------------------------
// Engine level: the four ExecutionMode pipelines
// ---------------------------------------------------------------------------

/// Builds a forced-tier engine pair for a mode, or `None` off-AVX2.
fn engine_pair(mode: ExecutionMode) -> Option<(Engine, Engine)> {
    if !sprint_attention::avx2_available() {
        eprintln!("note: host lacks AVX2+FMA; skipping forced-tier engine differential");
        return None;
    }
    let build = |tier: SimdTier| {
        Engine::builder(SprintConfig::medium())
            .mode(mode)
            .seed(42)
            .simd_tier(tier)
            .build()
            .unwrap()
    };
    let scalar = build(SimdTier::Scalar);
    let avx2 = build(SimdTier::Avx2);
    assert_eq!(scalar.simd_tier(), SimdTier::Scalar);
    assert_eq!(avx2.simd_tier(), SimdTier::Avx2);
    Some((scalar, avx2))
}

#[test]
fn all_four_execution_modes_agree_across_tiers() {
    for mode in [
        ExecutionMode::Dense,
        ExecutionMode::Oracle,
        ExecutionMode::NoRecompute,
        ExecutionMode::Sprint,
    ] {
        let Some((scalar, avx2)) = engine_pair(mode) else {
            return;
        };
        for (seq, seed) in [(33usize, 5u64), (100, 6), (64, 7)] {
            let spec = ModelConfig::bert_base().trace_spec().with_seq_len(seq);
            let trace = TraceGenerator::new(seed).generate(&spec).unwrap();
            let request = HeadRequest::from_trace(&trace);
            let s = scalar.run_head(&request).unwrap();
            let a = avx2.run_head(&request).unwrap();
            // The decision-making substrate is tier-independent: the
            // analog modes decide in the (untiered) ReRAM pruner, and
            // the digital modes compare scores against thresholds far
            // outside ULP noise. Stats follow decisions.
            assert_eq!(s.decisions, a.decisions, "{mode:?} decisions seq={seq}");
            assert_eq!(s.prune_stats, a.prune_stats, "{mode:?} prune stats");
            assert_eq!(s.memory_stats, a.memory_stats, "{mode:?} memory stats");
            assert_eq!(s.faults, a.faults, "{mode:?} faults");
            match mode {
                // Sprint recompute is the integer datapath end to end
                // (two-LUT softmax included): bitwise.
                ExecutionMode::Sprint => {
                    assert_eq!(s.output, a.output, "{mode:?} output bitwise seq={seq}");
                    assert_eq!(s, a, "{mode:?} full response bitwise");
                }
                // NoRecompute flows untiered approximate scores through
                // the tiered float softmax (polynomial exp on AVX2);
                // Dense/Oracle additionally run the tiered float
                // matmul. Outputs inherit those bounded divergences.
                ExecutionMode::NoRecompute | ExecutionMode::Dense | ExecutionMode::Oracle => {
                    assert_close(&s.output, &a.output, 1e-5, &format!("{mode:?} output"));
                }
            }
        }
    }
}

#[test]
fn decode_sessions_inherit_engine_tier_and_stay_bit_identical() {
    let Some((scalar, avx2)) = engine_pair(ExecutionMode::Sprint) else {
        return;
    };
    let d = 64;
    let prefill = 33; // lane boundary + 1
    let k = random_matrix(prefill, d, 61, 2.0);
    let v = random_matrix(prefill, d, 67, 1.0);
    let cfg = AttentionConfig::new(d);
    let request = SessionRequest::new(&k, &v, cfg, 0.15);
    let mut sess_s = scalar.open_session(&request).unwrap();
    let mut sess_a = avx2.open_session(&request).unwrap();
    let steps = random_matrix(30, d, 71, 1.5);
    for t in 0..8 {
        let step = DecodeStep {
            q: steps.row(3 * t),
            k: steps.row(3 * t + 1),
            v: steps.row(3 * t + 2),
        };
        let rs = sess_s.step(&step).unwrap();
        let ra = sess_a.step(&step).unwrap();
        // Sprint decode is pruner decisions (untiered) + the integer
        // recompute datapath: the whole step response is bitwise.
        assert_eq!(rs, ra, "step {t} diverged across tiers");
    }
    assert_eq!(sess_s.perf(), sess_a.perf(), "session perf rollup");

    // Evict BOTH sessions and rehydrate each on the OPPOSITE engine:
    // resumed sessions adopt the resuming engine's tier (in both
    // directions), and because both sides rebuild from the same
    // replayed history with the same seed, the decode streams must
    // stay bitwise-identical even under the default noisy model.
    let evicted_s = sess_s.evict();
    let evicted_a = sess_a.evict();
    let mut hist_k = Matrix::zeros(prefill + 8, d).unwrap();
    let mut hist_v = Matrix::zeros(prefill + 8, d).unwrap();
    for r in 0..prefill {
        hist_k.row_mut(r).copy_from_slice(k.row(r));
        hist_v.row_mut(r).copy_from_slice(v.row(r));
    }
    for t in 0..8 {
        hist_k
            .row_mut(prefill + t)
            .copy_from_slice(steps.row(3 * t + 1));
        hist_v
            .row_mut(prefill + t)
            .copy_from_slice(steps.row(3 * t + 2));
    }
    let mut on_scalar = scalar.resume_session(&evicted_a, &hist_k, &hist_v).unwrap();
    let mut on_avx2 = avx2.resume_session(&evicted_s, &hist_k, &hist_v).unwrap();
    for t in 0..2 {
        let base = 3 * (8 + t);
        let step = DecodeStep {
            q: steps.row(base),
            k: steps.row(base + 1),
            v: steps.row(base + 2),
        };
        let rs = on_scalar.step(&step).unwrap();
        let rr = on_avx2.step(&step).unwrap();
        assert_eq!(rs, rr, "post-resume step {t} diverged across swapped tiers");
    }
    assert_eq!(on_scalar.perf(), on_avx2.perf(), "post-resume perf rollup");
}

#[test]
fn model_server_rollups_are_bit_identical_in_sprint_mode() {
    if !sprint_attention::avx2_available() {
        eprintln!("note: host lacks AVX2+FMA; skipping model-server tier differential");
        return;
    }
    // Energy, latency and accuracy roll up from integer op counts and
    // the (bitwise-identical) Sprint outputs, so the entire
    // ModelResponse — f64 energy/latency/accuracy fields included —
    // must compare equal across tiers, at any worker count.
    let server = |tier: SimdTier| {
        ModelServer::new(
            Engine::builder(SprintConfig::medium())
                .mode(ExecutionMode::Sprint)
                .seed(9)
                .simd_tier(tier)
                .build()
                .unwrap(),
        )
    };
    let scalar = server(SimdTier::Scalar);
    let avx2 = server(SimdTier::Avx2);
    let profile = ModelProfile::from_model(&ModelConfig::bert_base())
        .with_layers(2)
        .with_heads(2)
        .with_seq_len(48);
    let request = ModelRequest::new(profile).with_seed(17).with_accuracy(true);
    let s = scalar.serve_threads(2, &request).unwrap();
    let a = avx2.serve_threads(4, &request).unwrap();
    assert_eq!(s, a, "ModelResponse diverged across tiers/worker counts");
}

// ---------------------------------------------------------------------------
// Dispatch-layer property tests (ISSUE 10 satellite 2)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Forced-scalar and forced-AVX2 engines produce identical
    /// HeadResponses (Sprint mode: outputs, decisions and every
    /// stats field `to_bits()`-exact) for random SprintConfigs at
    /// 1/2/4/8 workers.
    #[test]
    fn prop_dispatch_tiers_agree_across_configs_and_worker_counts(
        cfg_pick in 0usize..3,
        seq in 16usize..72,
        heads in 2usize..5,
        seed in 0u64..500,
        workers_pick in 0usize..4,
    ) {
        if !sprint_attention::avx2_available() {
            return;
        }
        let config = match cfg_pick {
            0 => SprintConfig::small(),
            1 => SprintConfig::medium(),
            _ => SprintConfig::large(),
        };
        let workers = [1usize, 2, 4, 8][workers_pick];
        let build = |tier: SimdTier| {
            Engine::builder(config.clone())
                .mode(ExecutionMode::Sprint)
                .seed(seed)
                .simd_tier(tier)
                .build()
                .unwrap()
        };
        let scalar = build(SimdTier::Scalar);
        let avx2 = build(SimdTier::Avx2);
        let spec = ModelConfig::bert_base().trace_spec().with_seq_len(seq);
        let traces = TraceGenerator::new(seed ^ 0xD1F).generate_many(&spec, heads).unwrap();
        let requests: Vec<HeadRequest> = traces.iter().map(HeadRequest::from_trace).collect();
        let rs = scalar.run_batch_threads(workers, &requests).unwrap();
        let ra = avx2.run_batch_threads(workers, &requests).unwrap();
        prop_assert_eq!(rs, ra, "Sprint batch diverged: config {} workers {}", cfg_pick, workers);
    }
}
