//! Decode-session equivalence suite: every incremental decode step
//! must be bit-identical to a fresh full-prefix `run_head` oracle.
//!
//! The [`sprint_engine::DecodeSession`] reuses programmed crossbars,
//! cached 8-bit K/V images and a long-lived memory controller across
//! steps; the oracle rebuilds all of it per step from the grown
//! history. Under the ideal (noise-free) analog model the two must
//! agree bit for bit — output row, pruning decision, per-step hardware
//! counters and memory statistics — at every step, in all four
//! [`ExecutionMode`]s, across ragged session lengths and worker
//! counts.

use sprint_attention::{Matrix, PagePool};
use sprint_engine::{
    DecodeLoop, DecodeSession, DecodeStep, DecodeTask, Engine, EvictedSession, ExecutionMode,
    HeadRequest, SessionRequest, SprintConfig,
};
use sprint_reram::{NoiseModel, ThresholdSpec};
use sprint_workloads::{ChurnEvent, ChurnSpec, HeadTrace, ModelConfig, TraceGenerator};

fn trace(seq: usize, seed: u64) -> HeadTrace {
    let spec = ModelConfig::bert_base()
        .trace_spec()
        .with_seq_len(seq)
        .with_padding(0.0);
    TraceGenerator::new(seed).generate(&spec).unwrap()
}

fn prefix(m: &Matrix, n: usize) -> Matrix {
    m.prefix_rows(n).unwrap()
}

fn one_row(m: &Matrix, r: usize) -> Matrix {
    Matrix::from_vec(1, m.cols(), m.row(r).to_vec()).unwrap()
}

fn engine(mode: ExecutionMode) -> Engine {
    Engine::builder(SprintConfig::small())
        .noise(NoiseModel::ideal())
        .mode(mode)
        .seed(17)
        .build()
        .unwrap()
}

/// Steps a session from `prefill` to the trace's end, comparing every
/// step against a fresh full-prefix `run_head` with the same head id.
fn assert_session_matches_oracle(
    engine: &Engine,
    trace: &HeadTrace,
    prefill: usize,
    head_id: u64,
    spec: Option<ThresholdSpec>,
) {
    let (pk, pv) = (prefix(trace.k(), prefill), prefix(trace.v(), prefill));
    let mut request =
        SessionRequest::new(&pk, &pv, trace.config(), trace.threshold()).with_head_id(head_id);
    if let Some(s) = spec {
        request = request.with_threshold_spec(s);
    }
    let mut session = engine.open_session(&request).unwrap();
    for step in prefill..trace.seq_len() {
        let response = session
            .step(&DecodeStep {
                q: trace.q().row(step),
                k: trace.k().row(step),
                v: trace.v().row(step),
            })
            .unwrap();
        let q1 = one_row(trace.q(), step);
        let hist_k = prefix(trace.k(), step + 1);
        let hist_v = prefix(trace.v(), step + 1);
        let mut head = HeadRequest::new(&q1, &hist_k, &hist_v, trace.config(), trace.threshold())
            .with_head_id(head_id);
        if let Some(s) = spec {
            head = head.with_threshold_spec(s);
        }
        let oracle = engine.run_head(&head).unwrap();
        assert_eq!(
            response.output.as_slice(),
            oracle.output.row(0),
            "step {step}: output row diverged"
        );
        assert_eq!(
            response.decision, oracle.decisions[0],
            "step {step}: pruning decision diverged"
        );
        assert_eq!(
            response.prune_stats, oracle.prune_stats,
            "step {step}: per-step hardware counters diverged"
        );
        assert_eq!(
            response.memory_stats, oracle.memory_stats,
            "step {step}: memory statistics diverged"
        );
        assert_eq!(response.position, step);
    }
}

#[test]
fn every_step_matches_the_fresh_oracle_in_all_four_modes() {
    let t = trace(56, 3);
    for mode in ExecutionMode::ALL {
        assert_session_matches_oracle(&engine(mode), &t, 24, 5, None);
    }
}

#[test]
fn single_token_prefills_and_short_sessions_match_too() {
    // Degenerate shapes: a 1-token prefill (the pruner tiles grow from
    // a single column) and a session that decodes a single token.
    let t = trace(20, 7);
    for mode in ExecutionMode::ALL {
        assert_session_matches_oracle(&engine(mode), &t, 1, 2, None);
        assert_session_matches_oracle(&engine(mode), &t, 19, 2, None);
    }
}

#[test]
fn quantized_comparator_sessions_match_the_oracle() {
    // score_bits engages the provisioned full-scale calibration — the
    // per-step query recalibration must reproduce the fresh pruner's
    // full scale exactly.
    let t = trace(40, 11);
    for bits in [4u32, 8] {
        assert_session_matches_oracle(
            &engine(ExecutionMode::Sprint),
            &t,
            16,
            9,
            Some(ThresholdSpec::quantized(bits)),
        );
    }
}

#[test]
fn range_widening_tokens_force_recalibration_and_still_match() {
    // Scale a mid-stream token up so its key/value magnitudes exceed
    // everything before: the KV cache and the pruner must requantize
    // and reprogram, and the session must still track the oracle.
    let base = trace(36, 13);
    let amplify = |m: &Matrix, row: usize| {
        let mut data = m.as_slice().to_vec();
        for x in &mut data[row * m.cols()..(row + 1) * m.cols()] {
            *x *= 4.0;
        }
        Matrix::from_vec(m.rows(), m.cols(), data).unwrap()
    };
    let k = amplify(base.k(), 28);
    let v = amplify(base.v(), 30);
    let e = engine(ExecutionMode::Sprint);
    let prefill = 24;
    let (pk, pv) = (prefix(&k, prefill), prefix(&v, prefill));
    let mut session = e
        .open_session(
            &SessionRequest::new(&pk, &pv, base.config(), base.threshold()).with_head_id(1),
        )
        .unwrap();
    let mut recalibrated = 0u64;
    for step in prefill..base.seq_len() {
        let response = session
            .step(&DecodeStep {
                q: base.q().row(step),
                k: k.row(step),
                v: v.row(step),
            })
            .unwrap();
        recalibrated += u64::from(response.perf.recalibrated);
        let q1 = one_row(base.q(), step);
        let (hist_k, hist_v) = (prefix(&k, step + 1), prefix(&v, step + 1));
        let oracle = e
            .run_head(
                &HeadRequest::new(&q1, &hist_k, &hist_v, base.config(), base.threshold())
                    .with_head_id(1),
            )
            .unwrap();
        assert_eq!(
            response.output.as_slice(),
            oracle.output.row(0),
            "step {step}"
        );
        assert_eq!(response.decision, oracle.decisions[0], "step {step}");
    }
    assert!(
        recalibrated >= 1,
        "the amplified tokens must have widened a quantizer range"
    );
    assert_eq!(session.perf().recalibrations, recalibrated);
}

#[test]
fn rehydration_straddling_recalibration_rebuilds_the_running_max_from_history() {
    // Amplified mid-stream tokens widen the per-column quantizer range
    // (k at row 28, v at row 30 — both force requantization). Evicting
    // and rehydrating just before, at, and just after those tokens must
    // change nothing: the rebuilt cache derives its running max from
    // the replayed history, never from a pre-eviction high-water mark.
    let base = trace(36, 13);
    let amplify = |m: &Matrix, row: usize| {
        let mut data = m.as_slice().to_vec();
        for x in &mut data[row * m.cols()..(row + 1) * m.cols()] {
            *x *= 4.0;
        }
        Matrix::from_vec(m.rows(), m.cols(), data).unwrap()
    };
    let k = amplify(base.k(), 28);
    let v = amplify(base.v(), 30);
    let e = engine(ExecutionMode::Sprint);
    let prefill = 24;
    let (pk, pv) = (prefix(&k, prefill), prefix(&v, prefill));
    let request = SessionRequest::new(&pk, &pv, base.config(), base.threshold()).with_head_id(1);
    for evict_before in [[27usize, 29], [28, 31], [29, 30]] {
        let mut twin = e.open_session(&request).unwrap();
        let mut session = Some(e.open_session(&request).unwrap());
        let mut recalibrated = 0u64;
        for step in prefill..base.seq_len() {
            if evict_before.contains(&step) {
                let stub = session.take().unwrap().evict();
                let (hk, hv) = (prefix(&k, step), prefix(&v, step));
                session = Some(e.resume_session(&stub, &hk, &hv).unwrap());
            }
            let ds = DecodeStep {
                q: base.q().row(step),
                k: k.row(step),
                v: v.row(step),
            };
            let got = session.as_mut().unwrap().step(&ds).unwrap();
            let want = twin.step(&ds).unwrap();
            assert_eq!(
                got, want,
                "evictions before steps {evict_before:?}: step {step} diverged"
            );
            recalibrated += u64::from(got.perf.recalibrated);
        }
        assert!(
            recalibrated >= 1,
            "the amplified tokens must have widened a quantizer range"
        );
        let survivor = session.unwrap();
        assert_eq!(survivor.perf().rehydrations, 2);
        assert_eq!(
            survivor.perf().recalibrations,
            twin.perf().recalibrations,
            "evictions before steps {evict_before:?}: recalibration count diverged"
        );
    }
}

#[test]
fn decode_loop_is_bit_identical_across_1_2_4_8_workers() {
    let e = engine(ExecutionMode::Sprint);
    let base = ModelConfig::bert_base().trace_spec();
    // Ragged lengths, mixed modes, mixed prefills.
    let tasks: Vec<DecodeTask> = [
        (32usize, 16usize, None),
        (48, 8, Some(ExecutionMode::Oracle)),
        (24, 20, Some(ExecutionMode::NoRecompute)),
        (40, 1, None),
        (16, 12, Some(ExecutionMode::Dense)),
        (64, 32, None),
    ]
    .into_iter()
    .map(|(seq, prefill, mode)| DecodeTask {
        spec: base.with_seq_len(seq),
        prefill,
        mode,
        threshold_spec: None,
    })
    .collect();
    let reference = DecodeLoop::new(&e).run_threads(1, &tasks).unwrap();
    let expected_tokens: u64 = tasks
        .iter()
        .map(|t| (t.spec.seq_len - t.prefill) as u64)
        .sum();
    assert_eq!(reference.tokens, expected_tokens);
    for workers in [2usize, 4, 8] {
        let run = DecodeLoop::new(&e).run_threads(workers, &tasks).unwrap();
        assert_eq!(
            run.sessions, reference.sessions,
            "decode loop diverged at {workers} workers"
        );
    }
}

#[test]
fn decode_loop_sessions_match_manually_driven_sessions() {
    // The loop's seeding contract: session i decodes the trace drawn
    // from derive_head_seed(engine_seed ^ TRACE_SALT, i) with head id
    // i — so a by-hand session over the same trace reproduces it.
    let e = engine(ExecutionMode::Sprint);
    let spec = ModelConfig::bert_base().trace_spec().with_seq_len(28);
    let task = DecodeTask {
        spec,
        prefill: 12,
        mode: None,
        threshold_spec: None,
    };
    let report = DecodeLoop::new(&e).run(&[task]).unwrap();
    // Reproduce by hand: the loop zeroes the padding fraction and uses
    // the engine's seed streams.
    let mut tspec = spec;
    tspec.padding_fraction = 0.0;
    let trace_seed = sprint_engine::derive_head_seed(e.seed() ^ 0x7ace, 0);
    let t = TraceGenerator::new(trace_seed).generate(&tspec).unwrap();
    let (pk, pv) = (prefix(t.k(), 12), prefix(t.v(), 12));
    let mut session = e
        .open_session(&SessionRequest::new(&pk, &pv, t.config(), t.threshold()).with_head_id(0))
        .unwrap();
    let mut last = Vec::new();
    for step in 12..28 {
        last = session
            .step(&DecodeStep {
                q: t.q().row(step),
                k: t.k().row(step),
                v: t.v().row(step),
            })
            .unwrap()
            .output;
    }
    assert_eq!(report.sessions[0].final_output, last);
    assert_eq!(report.sessions[0].tokens, 16);
    assert_eq!(
        report.sessions[0].kept_fraction,
        session.perf().kept_fraction()
    );
}

#[test]
fn random_evict_rehydrate_interleavings_stay_bit_identical_in_all_modes() {
    // Drive a randomized open/step/evict/rehydrate schedule and hold
    // every churned session to two references at once: a never-evicted
    // twin stepped with the same rows, and a fresh full-prefix
    // `run_head` oracle. Bit-identity (`f32::to_bits`) must survive
    // arbitrary eviction points in all four execution modes.
    enum Slot {
        Live(Box<DecodeSession>),
        Parked(Box<EvictedSession>),
        Hole,
    }
    struct Churned {
        trace: HeadTrace,
        slot: Slot,
        twin: DecodeSession,
        cursor: usize,
    }
    let spec = ChurnSpec::new(3, 10, 0.4);
    let prefills = [6usize, 1, 12];
    for (mode_index, mode) in ExecutionMode::ALL.into_iter().enumerate() {
        let e = engine(mode);
        let schedule = TraceGenerator::new(401 + mode_index as u64)
            .churn_schedule(&spec)
            .unwrap();
        let mut sessions: Vec<Churned> = prefills
            .iter()
            .enumerate()
            .map(|(s, &prefill)| {
                let trace = trace(prefill + spec.steps_per_session, 23 + s as u64);
                let (pk, pv) = (prefix(trace.k(), prefill), prefix(trace.v(), prefill));
                let request = SessionRequest::new(&pk, &pv, trace.config(), trace.threshold())
                    .with_head_id(s as u64);
                let slot = Slot::Live(Box::new(e.open_session(&request).unwrap()));
                let twin = e.open_session(&request).unwrap();
                Churned {
                    trace,
                    slot,
                    twin,
                    cursor: prefill,
                }
            })
            .collect();
        let mut evictions = 0u64;
        for event in schedule {
            let state = &mut sessions[event.session()];
            match event {
                ChurnEvent::Evict { .. } => {
                    if matches!(state.slot, Slot::Live(_)) {
                        let Slot::Live(live) = std::mem::replace(&mut state.slot, Slot::Hole)
                        else {
                            unreachable!()
                        };
                        state.slot = Slot::Parked(Box::new(live.evict()));
                        evictions += 1;
                    }
                }
                ChurnEvent::Step { session } => {
                    if matches!(state.slot, Slot::Parked(_)) {
                        let Slot::Parked(stub) = std::mem::replace(&mut state.slot, Slot::Hole)
                        else {
                            unreachable!()
                        };
                        let hk = prefix(state.trace.k(), state.cursor);
                        let hv = prefix(state.trace.v(), state.cursor);
                        state.slot =
                            Slot::Live(Box::new(e.resume_session(&stub, &hk, &hv).unwrap()));
                    }
                    let Slot::Live(live) = &mut state.slot else {
                        unreachable!()
                    };
                    let t = state.cursor;
                    let step = DecodeStep {
                        q: state.trace.q().row(t),
                        k: state.trace.k().row(t),
                        v: state.trace.v().row(t),
                    };
                    let got = live.step(&step).unwrap();
                    let want = state.twin.step(&step).unwrap();
                    assert_eq!(
                        got, want,
                        "{mode:?} session {session} step {t}: churned response \
                         diverged from the never-evicted twin"
                    );
                    let got_bits: Vec<u32> = got.output.iter().map(|x| x.to_bits()).collect();
                    let want_bits: Vec<u32> = want.output.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(got_bits, want_bits, "{mode:?} session {session} step {t}");
                    let q1 = one_row(state.trace.q(), t);
                    let hist_k = prefix(state.trace.k(), t + 1);
                    let hist_v = prefix(state.trace.v(), t + 1);
                    let oracle = e
                        .run_head(
                            &HeadRequest::new(
                                &q1,
                                &hist_k,
                                &hist_v,
                                state.trace.config(),
                                state.trace.threshold(),
                            )
                            .with_head_id(session as u64),
                        )
                        .unwrap();
                    let oracle_bits: Vec<u32> =
                        oracle.output.row(0).iter().map(|x| x.to_bits()).collect();
                    assert_eq!(
                        got_bits, oracle_bits,
                        "{mode:?} session {session} step {t}: churned response \
                         diverged from the fresh full-prefix oracle"
                    );
                    assert_eq!(got.decision, oracle.decisions[0]);
                    state.cursor += 1;
                }
            }
        }
        assert!(evictions > 0, "{mode:?}: the schedule never evicted");
        let mut rehydrations = 0u64;
        for (s, state) in sessions.iter().enumerate() {
            assert_eq!(
                state.cursor,
                prefills[s] + spec.steps_per_session,
                "session {s} did not finish its token budget"
            );
            let Slot::Live(live) = &state.slot else {
                panic!("session {s} ended parked despite stepping last");
            };
            rehydrations += live.perf().rehydrations;
            assert_eq!(
                live.perf().kept_fraction(),
                state.twin.perf().kept_fraction(),
                "{mode:?} session {s}: kept fraction diverged"
            );
        }
        assert!(
            rehydrations > 0,
            "{mode:?}: no eviction landed mid-stream, the schedule is toothless"
        );
        // Live sessions still hold pages; dropping them must drain the
        // pool completely — churn cannot leak page capacity.
        assert!(e.kv_pool().pages_in_use() > 0);
        drop(sessions);
        assert_eq!(e.kv_pool().pages_in_use(), 0, "{mode:?}: pages leaked");
    }
}

#[test]
fn churn_loop_matches_the_never_evicted_loop_across_1_2_4_8_workers() {
    // The same ragged task mix as the plain decode-loop sweep, but run
    // through `run_churn_threads` over a tiny-page pool with a
    // per-worker resident cap of one session: every SessionReport must
    // still be bit-identical to the never-evicted single-worker loop.
    let base = ModelConfig::bert_base().trace_spec();
    let tasks: Vec<DecodeTask> = [
        (32usize, 16usize, None),
        (48, 8, Some(ExecutionMode::Oracle)),
        (24, 20, Some(ExecutionMode::NoRecompute)),
        (40, 1, None),
        (16, 12, Some(ExecutionMode::Dense)),
        (64, 32, None),
    ]
    .into_iter()
    .map(|(seq, prefill, mode)| DecodeTask {
        spec: base.with_seq_len(seq),
        prefill,
        mode,
        threshold_spec: None,
    })
    .collect();
    let reference = DecodeLoop::new(&engine(ExecutionMode::Sprint))
        .run_threads(1, &tasks)
        .unwrap();
    assert_eq!(reference.evictions, 0);
    for workers in [1usize, 2, 4, 8] {
        let e = Engine::builder(SprintConfig::small())
            .noise(NoiseModel::ideal())
            .mode(ExecutionMode::Sprint)
            .seed(17)
            .kv_pool(PagePool::unbounded(4 * 5 * 128))
            .build()
            .unwrap();
        let run = DecodeLoop::new(&e)
            .run_churn_threads(workers, &tasks, 1)
            .unwrap();
        assert_eq!(
            run.sessions, reference.sessions,
            "churn loop diverged from the never-evicted loop at {workers} workers"
        );
        if workers < tasks.len() {
            assert!(
                run.evictions > 0 && run.rehydrations > 0,
                "{workers} workers over {} sessions at cap 1 must churn",
                tasks.len()
            );
        }
        assert_eq!(run.kv_pages_in_use, 0, "pages leaked at {workers} workers");
        assert_eq!(
            e.kv_pool().free_pages(),
            e.kv_pool().peak_pages(),
            "the pool must drain completely at {workers} workers"
        );
    }
}

#[test]
fn session_energy_separates_program_once_from_step_cost() {
    // The program-once share covers the prefill write and the one
    // token per step; a reprogram-per-step oracle would instead charge
    // the whole history every step. Check the separation is visible
    // and the step energy scales with the kept set, not the writes.
    let t = trace(48, 19);
    let e = engine(ExecutionMode::Sprint);
    let (pk, pv) = (prefix(t.k(), 32), prefix(t.v(), 32));
    let mut session = e
        .open_session(&SessionRequest::new(&pk, &pv, t.config(), t.threshold()))
        .unwrap();
    let first = session
        .step(&DecodeStep {
            q: t.q().row(32),
            k: t.k().row(32),
            v: t.v().row(32),
        })
        .unwrap();
    // First step programs the whole 33-token history.
    assert_eq!(first.perf.programmed_tokens, 33);
    assert!(first.perf.program_energy.total() > first.perf.energy.total());
    let second = session
        .step(&DecodeStep {
            q: t.q().row(33),
            k: t.k().row(33),
            v: t.v().row(33),
        })
        .unwrap();
    if !second.perf.recalibrated {
        assert_eq!(second.perf.programmed_tokens, 1);
        assert!(
            second.perf.program_energy.total() < first.perf.program_energy.total(),
            "appends amortize the programming cost"
        );
    }
    let perf = session.perf();
    assert_eq!(perf.tokens, 2);
    assert_eq!(
        perf.total_energy().total(),
        (perf.energy + perf.program_energy).total()
    );
}
