//! Cross-crate property tests: invariants that span substrate
//! boundaries.

use proptest::prelude::*;

use sprint_accelerator::{assign_tokens, MappingPolicy};
use sprint_memory::{MemoryGeometry, MemoryRequestGenerator, SldEngine};
use sprint_workloads::{TraceGenerator, TraceSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SLD split -> per-channel MRG -> union must equal exactly the
    /// fetchable set, with every key on its home channel.
    #[test]
    fn sld_and_mrg_compose_without_loss(
        prev in proptest::collection::vec(proptest::bool::ANY, 32..96),
        cur_bits in proptest::collection::vec(proptest::bool::ANY, 32..96),
    ) {
        let n = prev.len().min(cur_bits.len());
        let mut sld = SldEngine::new();
        sld.process(&prev[..n]).unwrap();
        let split = sld.process(&cur_bits[..n]).unwrap();
        let geometry = MemoryGeometry::default();
        let mut fetched = Vec::new();
        for ch in 0..geometry.channels {
            let mrg = MemoryRequestGenerator::new(ch, geometry).unwrap();
            for addr in mrg.generate(&split.memory_requests) {
                prop_assert_eq!(addr.location.channel, addr.key % geometry.channels);
                fetched.push(addr.key);
            }
        }
        fetched.sort_unstable();
        prop_assert_eq!(fetched, split.request_indices());
    }

    /// Trace decisions assigned to CORELETs cover exactly the kept set
    /// regardless of policy, and interleaving is never less balanced.
    #[test]
    fn trace_masks_partition_over_corelets(seed in 0u64..50, corelets in 1usize..6) {
        let spec = TraceSpec {
            seq_len: 64,
            head_dim: 16,
            prune_rate: 0.7,
            padding_fraction: 0.2,
            target_overlap: 0.8,
        };
        let trace = TraceGenerator::new(seed).generate(&spec).unwrap();
        for d in trace.reference_decisions().iter().take(trace.live_tokens()) {
            let kept = d.kept_indices();
            for policy in [MappingPolicy::Sequential, MappingPolicy::Interleaved] {
                let a = assign_tokens(&kept, corelets, policy, spec.seq_len);
                let mut all: Vec<usize> = a.concat();
                all.sort_unstable();
                prop_assert_eq!(&all, &kept);
            }
        }
    }

    /// The trace generator respects its contract for arbitrary valid
    /// specs: pruning rate within tolerance, padded tail fully pruned.
    #[test]
    fn trace_generator_contract(
        seed in 0u64..30,
        prune in 0.3f64..0.9,
        pad in 0.0f64..0.6,
    ) {
        let spec = TraceSpec {
            seq_len: 96,
            head_dim: 16,
            prune_rate: prune,
            padding_fraction: pad,
            target_overlap: 0.8,
        };
        let trace = TraceGenerator::new(seed).generate(&spec).unwrap();
        let live = trace.live_tokens();
        prop_assert!((trace.stats().mean_prune_rate
            - (prune * live as f64 + (spec.seq_len - live) as f64) / spec.seq_len as f64)
            .abs() < 0.08);
        for d in trace.reference_decisions() {
            for j in live..spec.seq_len {
                prop_assert!(d.is_pruned(j));
            }
        }
    }
}
