//! Offline stand-in for the slice of the `criterion` API the SPRINT
//! benches use.
//!
//! The build environment has no network access, so the 13 paper-figure
//! benches link against this minimal harness instead of real criterion.
//! It preserves the API shape (`benchmark_group` → `sample_size` →
//! `bench_function(|b| b.iter(..))` → `finish`, plus the
//! [`criterion_group!`]/[`criterion_main!`] macros) and does honest
//! wall-clock timing — median over `sample_size` samples — but none of
//! criterion's statistics, warm-up calibration, or HTML reports. Swap
//! the `criterion` entry in the workspace manifest for the real crate
//! to get those back; the *bench sources* need no changes. The
//! `BENCH_report.json` plumbing ([`report`], the `--bench-json` mode,
//! and the section scanner the `sprint-bench` report binary reuses) is
//! **stub-only**: real criterion has no `report` module and writes its
//! own JSON under `target/criterion`, so a swap must also port or
//! retire the `criterion::report` uses in `sprint-bench`.
//!
//! # Example
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("demo");
//! group.sample_size(10);
//! group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
//! group.finish();
//! ```

use std::sync::Mutex;
use std::time::Instant;

pub mod report;

/// Re-export so benches may use `criterion::black_box` interchangeably
/// with `std::hint::black_box`.
pub use std::hint::black_box;

/// One timed benchmark, as collected for `--bench-json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Group/function label ("group/id").
    pub id: String,
    /// Median sample wall-clock time.
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Number of samples taken.
    pub samples: usize,
}

/// Every record timed by this process, in execution order.
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Drains the records collected so far (used by [`report`] and tests).
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut RECORDS.lock().expect("bench records poisoned"))
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(name);
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line median/min/max summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed_ns: 0 };
            f(&mut b);
            samples.push(b.elapsed_ns);
        }
        self.record_samples(id, &samples)
    }

    /// Records pre-measured nanosecond samples under this group,
    /// exactly as if [`BenchmarkGroup::bench_function`] had timed
    /// them: same printed summary, same [`BenchRecord`] collected for
    /// `--bench-json`. For quantities that are *computed* rather than
    /// wall-timed — a batch's parallel critical path from per-worker
    /// CPU counters, a recorded host property — where re-running the
    /// work under a stopwatch would measure the wrong thing. (Stub
    /// extension: real criterion has no equivalent; a swap must port
    /// these call sites. Empty `samples_ns` records nothing.)
    pub fn record_samples(&mut self, id: &str, samples_ns: &[u128]) -> &mut Self {
        if samples_ns.is_empty() {
            return self;
        }
        let mut samples = samples_ns.to_vec();
        samples.sort_unstable();
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        println!(
            "bench {label}: median {} (min {}, max {}, n={})",
            fmt_ns(samples[samples.len() / 2]),
            fmt_ns(samples[0]),
            fmt_ns(*samples.last().unwrap()),
            samples.len(),
        );
        RECORDS
            .lock()
            .expect("bench records poisoned")
            .push(BenchRecord {
                id: label,
                median_ns: samples[samples.len() / 2],
                min_ns: samples[0],
                max_ns: *samples.last().unwrap(),
                samples: samples.len(),
            });
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times one sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `routine` once and records its wall-clock time as this
    /// sample. (Real criterion iterates adaptively; one iteration per
    /// sample keeps the stub's full-pipeline benches bounded.)
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles bench functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` running each group, mirroring
/// `criterion::criterion_main!`. After the groups run, the stub's
/// `--bench-json` mode (if requested on the command line) merges the
/// collected timings into `BENCH_report.json` — see [`report`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::report::maybe_write_bench_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn record_samples_collects_like_bench_function() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("pre");
        group.record_samples("measured", &[30, 10, 20]);
        group.record_samples("empty", &[]);
        group.finish();
        let records = take_records();
        let rec = records
            .iter()
            .find(|r| r.id == "pre/measured")
            .expect("recorded");
        assert_eq!(rec.median_ns, 20);
        assert_eq!(rec.min_ns, 10);
        assert_eq!(rec.max_ns, 30);
        assert_eq!(rec.samples, 3);
        assert!(!records.iter().any(|r| r.id == "pre/empty"));
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert!(fmt_ns(1_500).contains("µs"));
        assert!(fmt_ns(2_000_000).contains("ms"));
        assert!(fmt_ns(3_000_000_000).ends_with(" s"));
    }
}
