//! `BENCH_report.json` plumbing: a minimal JSON section scanner and the
//! `--bench-json` writer.
//!
//! The repo tracks its performance trajectory in a single
//! `BENCH_report.json` at the workspace root with two sections:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "experiments": [ ... ],   // written by `report --json`
//!   "benches": [ ... ]        // written by benches run with --bench-json
//! }
//! ```
//!
//! Two independent writers update one file, so each writer must
//! preserve the other's section verbatim. The offline build has no
//! `serde_json`, hence the hand-rolled — but fully string/escape/depth
//! aware — scanner below. The writers only ever *replace or append
//! whole sections*; nothing here interprets the other section's
//! contents beyond locating it.

use std::path::{Path, PathBuf};

use crate::BenchRecord;

/// Returns the end index (exclusive) of the JSON value starting at
/// `start` (which must point at the value's first byte).
fn value_end(bytes: &[u8], start: usize) -> usize {
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if escaped {
                escaped = false;
            } else if c == b'\\' {
                escaped = true;
            } else if c == b'"' {
                in_str = false;
                if depth == 0 {
                    return i + 1;
                }
            }
        } else {
            match c {
                b'"' => in_str = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    if depth == 0 {
                        return i;
                    }
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                b',' if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses the JSON string starting at `start` (a `"`); returns the raw
/// contents (escapes untouched) and the index just past the closing
/// quote.
fn string_token(bytes: &[u8], start: usize) -> Option<(String, usize)> {
    if bytes.get(start) != Some(&b'"') {
        return None;
    }
    let mut i = start + 1;
    let mut escaped = false;
    while i < bytes.len() {
        let c = bytes[i];
        if escaped {
            escaped = false;
        } else if c == b'\\' {
            escaped = true;
        } else if c == b'"' {
            let raw = String::from_utf8_lossy(&bytes[start + 1..i]).into_owned();
            return Some((raw, i + 1));
        }
        i += 1;
    }
    None
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Extracts the raw text of a top-level key's value from a JSON object.
///
/// Returns `None` when the key is absent or the text is not an object.
///
/// # Example
///
/// ```
/// let raw = criterion::report::raw_section(r#"{"a": [1, 2], "b": 3}"#, "a");
/// assert_eq!(raw.as_deref(), Some("[1, 2]"));
/// ```
pub fn raw_section(json: &str, key: &str) -> Option<String> {
    let bytes = json.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    loop {
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(b'}') | None => return None,
            Some(b',') => {
                i += 1;
                continue;
            }
            _ => {}
        }
        let (k, after_key) = string_token(bytes, i)?;
        i = skip_ws(bytes, after_key);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let end = value_end(bytes, i);
        if k == key {
            return Some(json[i..end].trim().to_string());
        }
        i = end;
    }
}

/// Splits the raw text of a JSON array into its element texts.
///
/// Returns an empty vector for anything that is not an array.
pub fn array_items(raw: &str) -> Vec<String> {
    let bytes = raw.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if bytes.get(i) != Some(&b'[') {
        return Vec::new();
    }
    i += 1;
    let mut items = Vec::new();
    loop {
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(b']') | None => return items,
            Some(b',') => {
                i += 1;
                continue;
            }
            _ => {}
        }
        let end = value_end(bytes, i);
        items.push(raw[i..end].trim().to_string());
        i = end;
    }
}

/// Extracts a string field's (raw) contents from a JSON object text.
pub fn string_field(obj: &str, key: &str) -> Option<String> {
    let raw = raw_section(obj, key)?;
    let bytes = raw.as_bytes();
    string_token(bytes, 0).map(|(s, _)| s)
}

/// Extracts an unsigned integer field from a JSON object text.
pub fn u128_field(obj: &str, key: &str) -> Option<u128> {
    raw_section(obj, key)?.parse().ok()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchRecord {
    /// Renders the record as a one-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}",
            json_escape(&self.id),
            self.median_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
        )
    }
}

/// Renders the `BENCH_report.json` object from raw `(key, value)`
/// sections (a `"schema": 1` header is always prepended).
pub fn render_report(sections: &[(&str, String)]) -> String {
    let mut out = String::from("{\n  \"schema\": 1");
    for (k, v) in sections {
        out.push_str(&format!(",\n  \"{k}\": {v}"));
    }
    out.push_str("\n}\n");
    out
}

/// Renders a bench-record array with the report file's indentation.
pub fn render_bench_array(items: &[String]) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    format!("[\n    {}\n  ]", items.join(",\n    "))
}

/// Walks up from the current directory to the workspace root (the
/// first ancestor holding a `Cargo.lock`), falling back to `.`.
pub fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Merges `records` into the `"benches"` section of the report file at
/// `path`, preserving any `"experiments"` section and any existing
/// bench entries whose ids are not being re-reported.
///
/// # Errors
///
/// I/O errors from reading or writing the file.
pub fn merge_bench_records(path: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).ok();
    let mut items: Vec<String> = Vec::new();
    if let Some(text) = &existing {
        if let Some(benches) = raw_section(text, "benches") {
            for item in array_items(&benches) {
                // Preserve the entry unless a fresh record re-reports
                // its id; entries without a parseable id are kept too.
                let re_reported =
                    string_field(&item, "id").is_some_and(|id| records.iter().any(|r| r.id == id));
                if !re_reported {
                    items.push(item);
                }
            }
        }
    }
    items.extend(records.iter().map(BenchRecord::to_json));
    let mut sections: Vec<(&str, String)> = Vec::new();
    if let Some(text) = &existing {
        if let Some(experiments) = raw_section(text, "experiments") {
            sections.push(("experiments", experiments));
        }
    }
    sections.push(("benches", render_bench_array(&items)));
    std::fs::write(path, render_report(&sections))
}

/// Parses the stub's command line for `--bench-json [PATH]` /
/// `--bench-json=PATH`. Returns the target path when the mode is
/// requested (`PATH` defaults to `<repo root>/BENCH_report.json`).
pub fn bench_json_target<I: IntoIterator<Item = String>>(args: I) -> Option<PathBuf> {
    let mut requested = false;
    let mut path: Option<PathBuf> = None;
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        if arg == "--bench-json" {
            requested = true;
            if let Some(next) = iter.peek() {
                if !next.starts_with('-') {
                    path = iter.next().map(PathBuf::from);
                }
            }
        } else if let Some(rest) = arg.strip_prefix("--bench-json=") {
            requested = true;
            path = Some(PathBuf::from(rest));
        }
    }
    requested.then(|| path.unwrap_or_else(|| repo_root().join("BENCH_report.json")))
}

/// The `--bench-json` mode: called by `criterion_main!` after the
/// groups finish. Writes the collected records when requested on the
/// command line; exits non-zero on I/O failure so CI notices.
pub fn maybe_write_bench_json() {
    let Some(path) = bench_json_target(std::env::args().skip(1)) else {
        return;
    };
    let records = crate::take_records();
    match merge_bench_records(&path, &records) {
        Ok(()) => println!(
            "bench-json: wrote {} record(s) to {}",
            records.len(),
            path.display()
        ),
        Err(e) => {
            eprintln!("bench-json: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_section_finds_top_level_values() {
        let json =
            r#"{"schema": 1, "experiments": [{"id": "a,b", "rows": [["x"]]}], "benches": []}"#;
        assert_eq!(raw_section(json, "schema").as_deref(), Some("1"));
        assert_eq!(raw_section(json, "benches").as_deref(), Some("[]"));
        let exp = raw_section(json, "experiments").unwrap();
        assert!(exp.starts_with('[') && exp.ends_with(']'));
        assert!(exp.contains("a,b"), "commas inside strings don't split");
        assert_eq!(raw_section(json, "missing"), None);
        assert_eq!(raw_section("not json", "x"), None);
    }

    #[test]
    fn raw_section_skips_nested_keys() {
        let json = r#"{"outer": {"benches": "inner"}, "benches": [1]}"#;
        assert_eq!(raw_section(json, "benches").as_deref(), Some("[1]"));
    }

    #[test]
    fn array_items_split_on_top_level_commas() {
        let raw = r#"[{"a": [1, 2]}, "s,tr", 3]"#;
        let items = array_items(raw);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], r#"{"a": [1, 2]}"#);
        assert_eq!(items[1], r#""s,tr""#);
        assert_eq!(items[2], "3");
        assert!(array_items("[]").is_empty());
        assert!(array_items("{}").is_empty());
    }

    #[test]
    fn fields_parse_strings_and_integers() {
        let obj = r#"{"id": "grp/fn", "median_ns": 1234, "samples": 10}"#;
        assert_eq!(string_field(obj, "id").as_deref(), Some("grp/fn"));
        assert_eq!(u128_field(obj, "median_ns"), Some(1234));
        assert_eq!(u128_field(obj, "id"), None, "strings are not integers");
    }

    #[test]
    fn record_roundtrips_through_its_own_json() {
        let r = BenchRecord {
            id: "g/f".into(),
            median_ns: 5,
            min_ns: 4,
            max_ns: 9,
            samples: 10,
        };
        let json = r.to_json();
        assert_eq!(string_field(&json, "id").as_deref(), Some("g/f"));
        assert_eq!(u128_field(&json, "median_ns"), Some(5));
        assert_eq!(u128_field(&json, "samples"), Some(10));
    }

    #[test]
    fn merge_preserves_experiments_and_dedups_by_id() {
        let dir = std::env::temp_dir().join(format!("criterion-stub-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_report.json");
        let record = |id: &str, median: u128| BenchRecord {
            id: id.into(),
            median_ns: median,
            min_ns: median,
            max_ns: median,
            samples: 3,
        };
        // Seed the file with an experiments section and one record.
        std::fs::write(
            &path,
            render_report(&[
                ("experiments", r#"[{"id": "fig11"}]"#.to_string()),
                (
                    "benches",
                    render_bench_array(&[record("old/one", 7).to_json()]),
                ),
            ]),
        )
        .unwrap();
        // Re-report old/one and add new/two.
        merge_bench_records(&path, &[record("old/one", 9), record("new/two", 2)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("fig11"), "experiments preserved");
        let benches = raw_section(&text, "benches").unwrap();
        let items = array_items(&benches);
        assert_eq!(items.len(), 2, "old/one deduplicated");
        let medians: Vec<u128> = items
            .iter()
            .filter_map(|i| u128_field(i, "median_ns"))
            .collect();
        assert!(medians.contains(&9) && medians.contains(&2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_keeps_entries_without_parseable_ids() {
        let dir = std::env::temp_dir().join(format!("criterion-stub-noid-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_report.json");
        std::fs::write(
            &path,
            render_report(&[(
                "benches",
                render_bench_array(&[r#"{"note": "hand-added, no id"}"#.to_string()]),
            )]),
        )
        .unwrap();
        let fresh = BenchRecord {
            id: "new/one".into(),
            median_ns: 1,
            min_ns: 1,
            max_ns: 1,
            samples: 1,
        };
        merge_bench_records(&path, &[fresh]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let items = array_items(&raw_section(&text, "benches").unwrap());
        assert_eq!(
            items.len(),
            2,
            "id-less entry preserved alongside fresh one"
        );
        assert!(text.contains("hand-added"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_json_flag_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(bench_json_target(args(&["--other"])), None);
        assert_eq!(
            bench_json_target(args(&["--bench-json=custom.json"])),
            Some(PathBuf::from("custom.json"))
        );
        assert_eq!(
            bench_json_target(args(&["--bench-json", "x.json"])),
            Some(PathBuf::from("x.json"))
        );
        // A following flag (cargo's --bench) is not mistaken for a path.
        let default = bench_json_target(args(&["--bench-json", "--bench"])).unwrap();
        assert!(default.ends_with("BENCH_report.json"));
    }
}
