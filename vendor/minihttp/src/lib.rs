//! Offline minimal HTTP/1.1 primitives over `std::net`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of HTTP it needs — the same
//! offline-deps pattern as the `rand`/`serde`/`criterion` stand-ins.
//! This crate is deliberately tiny and explicit:
//!
//! * [`read_request`] / [`Response::write_to`] — the server side:
//!   parse one request from a buffered stream, write one response,
//!   with persistent (keep-alive) connections supported;
//! * [`Client`] — the client side: a keep-alive connection that sends
//!   requests and parses [`Response`]s, reconnecting once on a broken
//!   socket;
//! * hard limits on header count, line length and body size, so a
//!   misbehaving peer cannot balloon server memory.
//!
//! Not supported (requests using them are rejected with
//! `InvalidData`): chunked transfer encoding, trailers, multi-line
//! headers, HTTP/2. Swap this crate for `tiny_http`/`ureq` in the
//! workspace manifest when network access is available.
//!
//! # Timeouts and idle polling
//!
//! A server handling keep-alive connections needs to distinguish "the
//! peer is idle between requests" from "the peer stalled mid-request".
//! [`read_request`] makes that split explicit: a read timeout **before
//! any byte of a new request** surfaces as [`io::ErrorKind::WouldBlock`]
//! / [`io::ErrorKind::TimedOut`] with nothing consumed (the caller can
//! poll a shutdown flag and retry safely), while a timeout **inside** a
//! request is retried internally up to [`MAX_STALL_TICKS`] read
//! timeouts before failing the connection.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum header-line length in bytes (request line included).
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Maximum number of headers per message.
pub const MAX_HEADERS: usize = 64;
/// Maximum body size in bytes accepted by the parsers.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Read-timeout ticks tolerated mid-message before the connection is
/// declared stalled (with a 100 ms stream timeout this is a 10 s
/// grace).
pub const MAX_STALL_TICKS: usize = 100;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by convention of the sender
    /// (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path plus optional query), verbatim.
    pub path: String,
    /// Protocol version token (`HTTP/1.1`).
    pub version: String,
    /// Header `(name, value)` pairs in arrival order; names keep their
    /// original case (use [`Request::header`] for lookups).
    pub headers: Vec<(String, String)>,
    /// Raw message body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_of(&self.headers, name)
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// anything older defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One HTTP response, built fluently and written with
/// [`Response::write_to`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 429, ...).
    pub status: u16,
    /// Reason phrase (canonical for known codes).
    pub reason: String,
    /// Header `(name, value)` pairs. `Content-Length` and `Connection`
    /// are managed by [`Response::write_to`]; setting them here too
    /// duplicates them.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the canonical reason phrase for `status`.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            reason: reason_phrase(status).to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain; charset=utf-8` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body.into().into_bytes())
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Sets the body.
    #[must_use]
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_of(&self.headers, name)
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Writes the response (status line, headers, `Content-Length`, a
    /// `Connection` header matching `keep_alive`, blank line, body) and
    /// flushes.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying writer.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, self.reason)?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(
            w,
            "Connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Canonical reason phrase for the status codes this workspace uses
/// (`"Unknown"` otherwise).
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn header_of<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Reads one `\r\n`- (or `\n`-) terminated line, retrying mid-line
/// read timeouts up to [`MAX_STALL_TICKS`]. The line must fit in
/// [`MAX_LINE_BYTES`].
fn read_line<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut line: Vec<u8> = Vec::new();
    let mut stalls = 0usize;
    loop {
        let available = match r.fill_buf() {
            Ok(buf) => buf,
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_STALL_TICKS {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-message",
                    ));
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            if line.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof before line end",
                ));
            }
            return Err(invalid("eof inside header line"));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        line.extend_from_slice(&available[..take]);
        r.consume(take);
        if line.len() > MAX_LINE_BYTES {
            return Err(invalid("header line exceeds MAX_LINE_BYTES"));
        }
        if newline.is_some() {
            while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| invalid("header line is not UTF-8"));
        }
    }
}

/// Reads exactly `n` body bytes, retrying mid-body read timeouts up to
/// [`MAX_STALL_TICKS`].
fn read_body<R: BufRead>(r: &mut R, n: usize) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; n];
    let mut read = 0usize;
    let mut stalls = 0usize;
    while read < n {
        match r.read(&mut body[read..]) {
            Ok(0) => return Err(invalid("eof inside message body")),
            Ok(k) => read += k,
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_STALL_TICKS {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-body",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(body)
}

/// Parses headers (shared by request and response paths) up to the
/// blank line.
fn read_headers<R: BufRead>(r: &mut R) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(invalid("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("header line without ':'"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
}

/// Validates framing headers and returns the declared body length.
fn body_length(headers: &[(String, String)]) -> io::Result<usize> {
    if header_of(headers, "transfer-encoding").is_some() {
        return Err(invalid("chunked transfer encoding is not supported"));
    }
    let Some(raw) = header_of(headers, "content-length") else {
        return Ok(0);
    };
    let n: usize = raw
        .trim()
        .parse()
        .map_err(|_| invalid("unparseable Content-Length"))?;
    if n > MAX_BODY_BYTES {
        return Err(invalid("body exceeds MAX_BODY_BYTES"));
    }
    Ok(n)
}

/// Reads one request from a buffered stream.
///
/// Returns `Ok(None)` on a clean EOF before any byte of a new request
/// (the peer closed an idle keep-alive connection). A read timeout in
/// the same position surfaces unchanged (`WouldBlock`/`TimedOut`) with
/// nothing consumed, so a server loop can poll a shutdown flag and call
/// again; timeouts *inside* a request are retried internally (see the
/// crate docs).
///
/// # Errors
///
/// `InvalidData` for malformed or over-limit messages; I/O errors from
/// the stream otherwise.
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<Request>> {
    // Peek before consuming anything: clean EOF and idle timeouts must
    // be distinguishable from mid-message failures.
    match r.fill_buf() {
        Ok([]) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e),
    }
    let request_line = read_line(r)?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v.to_string()),
        _ => return Err(invalid("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let headers = read_headers(r)?;
    let body = read_body(r, body_length(&headers)?)?;
    Ok(Some(Request {
        method,
        path,
        version,
        headers,
        body,
    }))
}

/// Reads one response from a buffered stream.
///
/// # Errors
///
/// `InvalidData` for malformed or over-limit messages; I/O errors from
/// the stream otherwise.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Response> {
    let status_line = read_line(r)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("malformed status line"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("unparseable status code"))?;
    let reason = parts.next().unwrap_or_default().to_string();
    let headers = read_headers(r)?;
    let body = read_body(r, body_length(&headers)?)?;
    Ok(Response {
        status,
        reason,
        headers,
        body,
    })
}

/// A keep-alive HTTP client connection.
///
/// Lazily connects on first use and reuses the socket across requests;
/// a send on a connection the server has since closed reconnects and
/// retries once. Not thread-safe by design — give each client thread
/// its own `Client`.
///
/// # Example
///
/// ```no_run
/// let mut client = minihttp::Client::connect("127.0.0.1:8080");
/// let response = client.get("/health").unwrap();
/// assert_eq!(response.status, 200);
/// ```
#[derive(Debug)]
pub struct Client {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
    read_timeout: Option<Duration>,
}

impl Client {
    /// A client for `addr` (`host:port`). No socket is opened until
    /// the first send.
    pub fn connect(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            stream: None,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }

    /// Sets the per-response read timeout (default 30 s; `None`
    /// blocks forever).
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    fn ensure_stream(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(self.read_timeout)?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }

    fn send_once(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        let reader = self.ensure_stream()?;
        {
            let mut stream = reader.get_ref();
            write!(stream, "{method} {path} HTTP/1.1\r\nHost: localhost\r\n")?;
            for (name, value) in headers {
                write!(stream, "{name}: {value}\r\n")?;
            }
            write!(
                stream,
                "Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
                body.len()
            )?;
            stream.write_all(body)?;
            stream.flush()?;
        }
        let response = read_response(reader)?;
        // Honor a server-requested close so the next send reconnects.
        if response
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            self.stream = None;
        }
        Ok(response)
    }

    /// Sends one request and reads its response. A failure on a reused
    /// connection (the server closed it between requests) reconnects
    /// and retries once; failures on a fresh connection surface as-is.
    ///
    /// # Errors
    ///
    /// Connection, timeout, or parse (`InvalidData`) errors.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        let reused = self.stream.is_some();
        match self.send_once(method, path, headers, body) {
            Ok(response) => Ok(response),
            Err(e) if reused && !is_timeout(&e) => {
                self.stream = None;
                self.send_once(method, path, headers, body)
            }
            Err(e) => Err(e),
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Same as [`Client::send`].
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.send("GET", path, &[], &[])
    }

    /// `POST path` with an `application/json` body.
    ///
    /// # Errors
    ///
    /// Same as [`Client::send`].
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<Response> {
        self.send(
            "POST",
            path,
            &[("Content-Type", "application/json")],
            body.as_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> io::Result<Option<Request>> {
        read_request(&mut Cursor::new(text.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse("POST /v1/serve HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/serve");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"), "lookup is case-insensitive");
        assert_eq!(r.body, b"body");
        assert!(r.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_get_without_body_and_bare_lf_lines() {
        let r = parse("GET /health HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!r.keep_alive());
        let old = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!old.keep_alive(), "HTTP/1.0 defaults to close");
    }

    #[test]
    fn clean_eof_returns_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_messages_are_invalid_data() {
        for text in [
            "GARBAGE\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            let err = parse(text).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{text:?}");
        }
    }

    #[test]
    fn limits_are_enforced() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE_BYTES));
        assert!(parse(&long_line).is_err());
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many.push_str(&format!("H{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(parse(&many).is_err());
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(parse(&huge).is_err());
    }

    #[test]
    fn response_round_trips_through_its_own_writer() {
        let response = Response::json(429, "{\"err\":\"full\"}").with_header("Retry-After", "1");
        let mut wire = Vec::new();
        response.write_to(&mut wire, true).unwrap();
        let parsed = read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(parsed.status, 429);
        assert_eq!(parsed.reason, "Too Many Requests");
        assert_eq!(parsed.header("retry-after"), Some("1"));
        assert_eq!(parsed.header("connection"), Some("keep-alive"));
        assert_eq!(parsed.body_str(), "{\"err\":\"full\"}");
    }

    #[test]
    fn write_to_close_marks_the_connection() {
        let mut wire = Vec::new();
        Response::text(200, "ok")
            .write_to(&mut wire, false)
            .unwrap();
        let parsed = read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(parsed.header("connection"), Some("close"));
        assert_eq!(parsed.header("content-length"), Some("2"));
    }

    #[test]
    fn client_and_server_speak_over_a_real_socket() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            // Serve two requests on one connection, then close.
            for i in 0..2 {
                let request = read_request(&mut reader).unwrap().unwrap();
                assert_eq!(request.path, format!("/ping/{i}"));
                Response::text(200, format!("pong {i}"))
                    .write_to(&mut reader.get_mut(), true)
                    .unwrap();
            }
            assert!(read_request(&mut reader).unwrap().is_none());
        });
        let mut client = Client::connect(addr.to_string());
        for i in 0..2 {
            let response = client.get(&format!("/ping/{i}")).unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.body_str(), format!("pong {i}"));
        }
        drop(client);
        server.join().unwrap();
    }
}
