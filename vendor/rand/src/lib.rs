//! Offline stand-in for the slice of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no network access, so this crate vendors a
//! deterministic, dependency-free PRNG behind the same names the real
//! crate exposes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! different stream than the real `StdRng` (ChaCha12), but every
//! consumer in this workspace only relies on *fixed-seed determinism*,
//! never on a specific stream, so swapping this crate for the real one
//! changes concrete draws without invalidating any test.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! let x: f64 = a.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let i = a.gen_range(0..10usize);
//! assert!(i < 10);
//! ```

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`]
/// (the stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per draw, irrelevant at simulation scale.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                // start + unit*(end-start) with unit < 1 can still round
                // up to exactly `end` at the type's precision boundary;
                // redraw to honour the half-open contract (unit = 0
                // always yields start, so this terminates).
                loop {
                    let unit = <$t as Standard>::sample(rng);
                    let v = self.start + unit * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (rand's `Standard` draw).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for rand's `StdRng`: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_is_deterministic() {
        let draws = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8).map(|_| rng.gen::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(43));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}/10000 at p=0.25");
    }
}
