//! No-op replacements for serde's derive macros.
//!
//! The build environment has no network access, so the workspace
//! vendors a serialization-free stand-in: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` parse (including `#[serde(...)]` field and
//! container attributes, registered as helper attributes) but expand to
//! nothing. Swap the `serde`/`serde_derive` entries in the workspace
//! manifest for the real crates to get actual serialization.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
