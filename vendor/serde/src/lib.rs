//! Offline stand-in for the `serde` facade.
//!
//! Only what this workspace uses: the `Serialize` / `Deserialize`
//! derive macros (vendored as no-ops in `serde_derive`) plus empty
//! marker traits of the same names so `use serde::{Serialize,
//! Deserialize}` resolves for both the macro and any trait-bound
//! position. No actual serialization is performed anywhere in the
//! workspace; JSON output is hand-rolled (see
//! `sprint_core::ExperimentResult::to_json`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`'s name; never implemented
/// by the no-op derive and never required by workspace code.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}
