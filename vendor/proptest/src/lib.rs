//! Offline stand-in for the slice of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no network access, so property tests run
//! against this dependency-free re-implementation instead of real
//! proptest. Supported surface:
//!
//! * the [`proptest!`] macro with `arg in strategy` parameters and an
//!   optional `#![proptest_config(ProptestConfig::with_cases(n))]`
//!   header;
//! * [`Strategy`] impls for integer and float [`Range`]s,
//!   [`collection::vec`], and [`bool::ANY`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is **no shrinking and no persisted
//! failure corpus**: each test draws `cases` inputs (default 64) from a
//! fixed per-test seed derived from the test's name, so runs are fully
//! deterministic. Swap the `proptest` entry in the workspace manifest
//! for the real crate to get shrinking back; the test sources are
//! written against the real API.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // (write `#[test]` here in real test modules)
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many random cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of inputs drawn per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — lighter than real proptest's 256, since the stub
    /// cannot shrink a failure down to a small counterexample.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs (the stand-in for proptest's `Strategy`).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

pub mod bool {
    //! Boolean strategies.

    use super::{Rng, StdRng, Strategy};

    /// Strategy producing `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Range, Rng, StdRng, Strategy};

    /// Strategy producing `Vec`s of an element strategy, with length
    /// drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`
    /// (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derives the per-test RNG seed from the test's name, so every
/// property gets a distinct but fully deterministic input stream.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a; DefaultHasher's keys are unspecified, this is stable.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Builds the RNG for one property run.
pub fn runner(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name))
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` drawing `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut proptest_rng = $crate::runner(concat!(module_path!(), "::", stringify!($name)));
                for proptest_case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);
                    )+
                    let run = || -> () { $body };
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest stub: property {} failed on case {} (no shrinking available)",
                            stringify!($name),
                            proptest_case,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..50, f in -1.0f64..1.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..10, 3..8)) {
            prop_assert!((3..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn bools_vary(bits in crate::collection::vec(crate::bool::ANY, 64..65)) {
            let trues = bits.iter().filter(|&&b| b).count();
            prop_assert!(trues > 0 && trues < 64, "unexpectedly constant: {trues}");
        }
    }

    #[test]
    fn seeds_differ_per_test() {
        assert_ne!(crate::seed_for("a::one"), crate::seed_for("a::two"));
        assert_eq!(crate::seed_for("a::one"), crate::seed_for("a::one"));
    }
}
